// Batch-vs-tuple differential: the batch engine must be observationally
// identical to the tuple-at-a-time engine — same tuples in the same
// order AND identical simulated CostMeter charges (DESIGN.md §10) —
// across randomized tables/predicates/joins, edge-case shapes, and
// deterministic fault schedules.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics_registry.h"
#include "common/rng.h"
#include "exec/aggregate.h"
#include "exec/executors.h"
#include "exec/sort.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::Sel;

using ExecFactory = std::function<std::unique_ptr<Executor>()>;

/// Everything observable about one executor-tree run.
struct RunOutcome {
  Status status = Status::OK();
  std::vector<Tuple> rows;
  uint64_t tuples = 0;
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
};

/// Drive a fresh executor tree tuple-at-a-time from a cold buffer pool.
RunOutcome RunTuplePath(Database* db, const ExecFactory& factory) {
  RunOutcome out;
  EXPECT_TRUE(db->ColdStart().ok());
  const CostMeter& meter = db->meter();
  uint64_t r0 = meter.blocks_read();
  uint64_t w0 = meter.blocks_written();
  uint64_t t0 = meter.tuples_processed();
  std::unique_ptr<Executor> exec = factory();
  out.status = exec->Init();
  while (out.status.ok()) {
    auto row = exec->Next();
    if (!row.ok()) {
      out.status = row.status();
      break;
    }
    if (!row->has_value()) break;
    out.rows.push_back(std::move(**row));
  }
  out.blocks_read = meter.blocks_read() - r0;
  out.blocks_written = meter.blocks_written() - w0;
  out.tuples = meter.tuples_processed() - t0;
  return out;
}

/// Drive a fresh executor tree batch-at-a-time from a cold buffer pool.
RunOutcome RunBatchPath(Database* db, const ExecFactory& factory,
                        size_t batch_size) {
  RunOutcome out;
  EXPECT_TRUE(db->ColdStart().ok());
  const CostMeter& meter = db->meter();
  uint64_t r0 = meter.blocks_read();
  uint64_t w0 = meter.blocks_written();
  uint64_t t0 = meter.tuples_processed();
  std::unique_ptr<Executor> exec = factory();
  out.status = exec->Init();
  TupleBatch batch(batch_size);
  while (out.status.ok()) {
    auto more = exec->NextBatch(&batch);
    if (!more.ok()) {
      out.status = more.status();
      break;
    }
    if (batch.empty()) break;
    for (Tuple& row : batch) out.rows.push_back(std::move(row));
  }
  out.blocks_read = meter.blocks_read() - r0;
  out.blocks_written = meter.blocks_written() - w0;
  out.tuples = meter.tuples_processed() - t0;
  return out;
}

void ExpectIdentical(const RunOutcome& tuple_run,
                     const RunOutcome& batch_run) {
  ASSERT_EQ(tuple_run.status.code(), batch_run.status.code())
      << "tuple: " << tuple_run.status.ToString()
      << " batch: " << batch_run.status.ToString();
  ASSERT_EQ(tuple_run.rows.size(), batch_run.rows.size());
  for (size_t i = 0; i < tuple_run.rows.size(); i++) {
    ASSERT_EQ(tuple_run.rows[i], batch_run.rows[i]) << "row " << i;
  }
  EXPECT_EQ(tuple_run.tuples, batch_run.tuples) << "CPU charge diverged";
  EXPECT_EQ(tuple_run.blocks_read, batch_run.blocks_read)
      << "read charge diverged";
  EXPECT_EQ(tuple_run.blocks_written, batch_run.blocks_written)
      << "write charge diverged";
}

/// Run the differential across a spread of batch sizes, including the
/// degenerate 1-row batch and sizes around page/row-count boundaries.
void Differential(Database* db, const ExecFactory& factory) {
  RunOutcome tuple_run = RunTuplePath(db, factory);
  for (size_t batch_size : {size_t{1}, size_t{7}, size_t{256},
                            kDefaultExecBatchSize}) {
    SCOPED_TRACE("batch_size " + std::to_string(batch_size));
    RunOutcome batch_run = RunBatchPath(db, factory, batch_size);
    ExpectIdentical(tuple_run, batch_run);
  }
}

/// Factory for a planner-built tree over `graph` (fresh tree per call).
ExecFactory PlannedFactory(Database* db, QueryGraph graph) {
  return [db, graph]() {
    auto plan = db->planner().Plan(graph, &db->views(), ViewMode::kNone);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto exec = db->planner().Build(*plan, &db->catalog(),
                                    &db->buffer_pool(), &db->meter());
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    return std::move(*exec);
  };
}

TEST(ExecBatchDifferentialTest, RandomizedScansAndJoins) {
  Rng rng(0xbadc0ffee);
  for (int round = 0; round < 8; round++) {
    SCOPED_TRACE("round " + std::to_string(round));
    size_t rows_r = 200 + static_cast<size_t>(rng.NextRange(2000));
    size_t rows_s = 200 + static_cast<size_t>(rng.NextRange(4000));
    std::unique_ptr<Database> db(
        testutil::MakeTwoTableDb(rows_r, rows_s, /*seed=*/round + 11));

    QueryGraph graph;
    graph.AddRelation("r");
    // Random predicate mix on r (and s when joined).
    if (rng.NextDouble(0, 1) < 0.8) {
      CompareOp op = rng.NextDouble(0, 1) < 0.5 ? CompareOp::kLt
                                                : CompareOp::kGe;
      graph.AddSelection(Sel("r", "r_a", op, Value(rng.NextInt(0, 99))));
    }
    if (rng.NextDouble(0, 1) < 0.6) {
      graph.AddJoin(testutil::RsJoin());
      if (rng.NextDouble(0, 1) < 0.5) {
        graph.AddSelection(
            Sel("s", "s_c", CompareOp::kLt, Value(rng.NextInt(1, 49))));
      }
    }
    Differential(db.get(), PlannedFactory(db.get(), graph));
  }
}

TEST(ExecBatchDifferentialTest, EmptyTable) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(0, 0));
  TableInfo* r = db->catalog().GetTable("r");
  ASSERT_NE(r, nullptr);
  Differential(db.get(), [&] {
    return std::make_unique<SeqScanExecutor>(r, &db->buffer_pool(),
                                             &db->meter());
  });
}

TEST(ExecBatchDifferentialTest, SingleTuple) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(1, 1));
  QueryGraph graph;
  graph.AddJoin(testutil::RsJoin());
  Differential(db.get(), PlannedFactory(db.get(), graph));
}

TEST(ExecBatchDifferentialTest, ExactBatchBoundary) {
  // 512 rows: exact multiples of batch sizes 1 and 256, and exactly two
  // 256-row batches — the end-of-stream batch is empty, not short.
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(512, 512));
  TableInfo* r = db->catalog().GetTable("r");
  ASSERT_NE(r, nullptr);
  ExecFactory factory = [&] {
    return std::make_unique<SeqScanExecutor>(r, &db->buffer_pool(),
                                             &db->meter());
  };
  RunOutcome tuple_run = RunTuplePath(db.get(), factory);
  ASSERT_EQ(tuple_run.rows.size(), 512u);
  for (size_t batch_size : {size_t{256}, size_t{512}}) {
    SCOPED_TRACE("batch_size " + std::to_string(batch_size));
    ExpectIdentical(tuple_run, RunBatchPath(db.get(), factory, batch_size));
  }
}

TEST(ExecBatchDifferentialTest, AllFilteredBatches) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(1500, 100));
  QueryGraph graph;
  // r_a is uniform in [0, 100): nothing survives.
  graph.AddSelection(
      Sel("r", "r_a", CompareOp::kLt, Value(static_cast<int64_t>(-1))));
  Differential(db.get(), PlannedFactory(db.get(), graph));
}

TEST(ExecBatchDifferentialTest, SortAggregateAndLimitDecorations) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(900, 2700));
  QueryGraph graph;
  graph.AddJoin(testutil::RsJoin());
  graph.AddSelection(
      Sel("s", "s_c", CompareOp::kLt, Value(static_cast<int64_t>(30))));
  ExecFactory spj = PlannedFactory(db.get(), graph);
  TableInfo* r = db->catalog().GetTable("r");
  ASSERT_NE(r, nullptr);

  {
    SCOPED_TRACE("sort");
    Differential(db.get(), [&] {
      return std::make_unique<SortExecutor>(
          spj(), std::vector<SortKey>{{1, false}, {0, true}}, &db->meter());
    });
  }
  {
    SCOPED_TRACE("aggregate");
    Differential(db.get(), [&] {
      AggSpec count;
      count.func = AggFunc::kCount;
      count.column_index = AggSpec::kStar;
      count.output_name = "count(*)";
      AggSpec avg;
      avg.func = AggFunc::kAvg;
      avg.column_index = 2;  // r_b
      avg.output_name = "avg(r_b)";
      return std::make_unique<HashAggregateExecutor>(
          spj(), std::vector<size_t>{1}, std::vector<AggSpec>{count, avg},
          &db->meter());
    });
  }
  {
    SCOPED_TRACE("limit");
    // LIMIT stays tuple-driven by design: both paths must charge the
    // child for exactly `limit` rows.
    Differential(db.get(), [&] {
      return std::make_unique<LimitExecutor>(spj(), 37);
    });
  }
}

/// Under a deterministic fault schedule, both paths must fail (or not)
/// with the same status, the same rows-before-failure drained total,
/// and the same charges — the bit-identity guarantee chaos schedules
/// rely on. Seeded from SQP_CHAOS_SEED like the chaos sweep.
TEST(ExecBatchDifferentialTest, FaultScheduleBitIdentical) {
  uint64_t base_seed = 1;
  if (const char* env = std::getenv("SQP_CHAOS_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  // Small pool: the scan cannot cache the table, so "disk.read" fires
  // on real fetches in both runs.
  std::unique_ptr<Database> db(
      testutil::MakeTwoTableDb(3000, 6000, /*seed=*/5, /*pool_pages=*/32));
  QueryGraph graph;
  graph.AddJoin(testutil::RsJoin());
  graph.AddSelection(
      Sel("r", "r_a", CompareOp::kGe, Value(static_cast<int64_t>(10))));
  ExecFactory factory = PlannedFactory(db.get(), graph);

  Rng rng(base_seed);
  for (int round = 0; round < 6; round++) {
    SCOPED_TRACE("fault round " + std::to_string(round));
    uint64_t nth = 5 + rng.NextRange(120);

    FaultInjector::Global().Reset();
    FaultInjector::Global().Arm("disk.read", FaultSpec::EveryNth(nth));
    RunOutcome tuple_run = RunTuplePath(db.get(), factory);

    FaultInjector::Global().Reset();
    FaultInjector::Global().Arm("disk.read", FaultSpec::EveryNth(nth));
    RunOutcome batch_run = RunBatchPath(db.get(), factory, 1024);

    FaultInjector::Global().Reset();
    ExpectIdentical(tuple_run, batch_run);
  }
}

/// exec.batch.* metrics: batches/rows counters advance and the fill
/// gauge stays within (0, target].
TEST(ExecBatchMetricsTest, CountersAdvance) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(2100, 100));
  TableInfo* r = db->catalog().GetTable("r");
  ASSERT_NE(r, nullptr);
  auto before = MetricsRegistry::Global().Snapshot();
  SeqScanExecutor scan(r, &db->buffer_pool(), &db->meter());
  auto rows = DrainExecutor(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2100u);
  auto after = MetricsRegistry::Global().Snapshot();
  EXPECT_GT(after.counter("exec.batch.batches"),
            before.counter("exec.batch.batches"));
  EXPECT_GE(after.counter("exec.batch.rows"),
            before.counter("exec.batch.rows") + 2100);
  EXPECT_GT(after.counter("exec.batch.pages_pinned"),
            before.counter("exec.batch.pages_pinned"));
  EXPECT_GT(after.gauges.at("exec.batch.avg_fill"), 0.0);
}

}  // namespace
}  // namespace sqp
