// View registry, applicability rules, and structural rewriting.
#include "optimizer/view_matcher.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::Sel;

QueryGraph SelGraph(int64_t cut) {
  QueryGraph g;
  g.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(cut)));
  return g;
}

QueryGraph JoinGraph() {
  QueryGraph g;
  g.AddJoin(Join("r", "r_id", "s", "s_rid"));
  return g;
}

TEST(ViewRegistryTest, RegisterLookupUnregister) {
  ViewRegistry registry;
  registry.Register(ViewDefinition{"v1", SelGraph(5)});
  EXPECT_TRUE(registry.Contains("v1"));
  EXPECT_NE(registry.Get("v1"), nullptr);
  EXPECT_EQ(registry.Get("v2"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
  registry.Unregister("v1");
  EXPECT_FALSE(registry.Contains("v1"));
}

TEST(ViewRegistryTest, FindExactMatchesByGraphIdentity) {
  ViewRegistry registry;
  registry.Register(ViewDefinition{"v1", SelGraph(5)});
  EXPECT_NE(registry.FindExact(SelGraph(5)), nullptr);
  EXPECT_EQ(registry.FindExact(SelGraph(6)), nullptr);
}

TEST(ViewApplicableTest, RequiresContainment) {
  ViewDefinition view{"v", SelGraph(5)};
  QueryGraph q = SelGraph(5);
  q.AddJoin(Join("r", "r_id", "s", "s_rid"));
  EXPECT_TRUE(ViewApplicable(view, q));
  EXPECT_FALSE(ViewApplicable(view, SelGraph(6)));
  EXPECT_FALSE(ViewApplicable(view, JoinGraph()));
}

TEST(ViewApplicableTest, RejectsUnabsorbedInternalJoin) {
  // View covers {r, s} without the join; the query joins them — the
  // view (a cross-section without that join) cannot substitute.
  QueryGraph def;
  def.AddRelation("r");
  def.AddRelation("s");
  def.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  def.AddSelection(Sel("s", "s_c", CompareOp::kLt, Value(int64_t{5})));
  ViewDefinition view{"v", def};

  QueryGraph q = def;
  q.AddJoin(Join("r", "r_id", "s", "s_rid"));
  EXPECT_FALSE(ViewApplicable(view, q));
}

TEST(ViewApplicableTest, EmptyDefinitionNeverApplies) {
  ViewDefinition view{"v", QueryGraph()};
  EXPECT_FALSE(ViewApplicable(view, SelGraph(5)));
}

TEST(RewriteTest, BaselineEveryRelationItsOwnUnit) {
  QueryGraph q = JoinGraph();
  q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  RewrittenQuery rw = RewriteWithViews(q, {});
  ASSERT_EQ(rw.units.size(), 2u);
  EXPECT_EQ(rw.joins.size(), 1u);
  EXPECT_TRUE(rw.view_tables_used.empty());
  // Selections pushed to the owning unit.
  for (const auto& unit : rw.units) {
    if (unit.stored_table == "r") {
      EXPECT_EQ(unit.selections.size(), 1u);
    } else {
      EXPECT_TRUE(unit.selections.empty());
    }
  }
}

TEST(RewriteTest, ViewAbsorbsJoinAndSelections) {
  QueryGraph def = JoinGraph();
  def.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  ViewDefinition view{"v", def};

  QueryGraph q = def;
  q.AddSelection(Sel("s", "s_c", CompareOp::kGt, Value(int64_t{3})));
  ASSERT_TRUE(ViewApplicable(view, q));
  RewrittenQuery rw = RewriteWithViews(q, {&view});
  ASSERT_EQ(rw.units.size(), 1u);
  EXPECT_TRUE(rw.units[0].is_view);
  EXPECT_EQ(rw.units[0].stored_table, "v");
  EXPECT_TRUE(rw.joins.empty());  // absorbed
  // Only the residual (s_c) selection remains.
  ASSERT_EQ(rw.units[0].selections.size(), 1u);
  EXPECT_EQ(rw.units[0].selections[0].column, "s_c");
}

TEST(RewriteTest, CrossUnitJoinsSurvive) {
  // Three relations, view covering two; the third joins across.
  QueryGraph def = JoinGraph();
  ViewDefinition view{"v", def};
  QueryGraph q = def;
  q.AddJoin(Join("s", "s_c", "t", "t_c"));
  RewrittenQuery rw = RewriteWithViews(q, {&view});
  ASSERT_EQ(rw.units.size(), 2u);
  ASSERT_EQ(rw.joins.size(), 1u);
  EXPECT_EQ(rw.joins[0].Key(), Join("s", "s_c", "t", "t_c").Key());
}

TEST(ApplicableViewsTest, SortedLargestFirst) {
  ViewRegistry registry;
  registry.Register(ViewDefinition{"small", SelGraph(5)});
  QueryGraph big_def = JoinGraph();
  big_def.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  registry.Register(ViewDefinition{"big", big_def});

  QueryGraph q = big_def;
  auto views = ApplicableViews(registry, q);
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0]->table_name, "big");
  EXPECT_EQ(views[1]->table_name, "small");
}

}  // namespace
}  // namespace sqp
