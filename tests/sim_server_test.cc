// Processor-sharing simulator: completion-time math, cancellation,
// work conservation.
#include "sim/sim_server.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace sqp {
namespace {

TEST(SimServerTest, SingleJobRunsAtFullSpeed) {
  SimServer server;
  auto job = server.Submit(5.0);
  EXPECT_TRUE(server.IsActive(job));
  EXPECT_DOUBLE_EQ(server.NextCompletionTime(), 5.0);
  server.AdvanceTo(5.0);
  EXPECT_TRUE(server.IsComplete(job));
  EXPECT_DOUBLE_EQ(server.CompletionTime(job), 5.0);
}

TEST(SimServerTest, TwoEqualJobsShareCapacity) {
  SimServer server;
  auto a = server.Submit(2.0);
  auto b = server.Submit(2.0);
  // Each progresses at rate 1/2: both complete at t=4.
  server.AdvanceTo(10.0);
  EXPECT_DOUBLE_EQ(server.CompletionTime(a), 4.0);
  EXPECT_DOUBLE_EQ(server.CompletionTime(b), 4.0);
}

TEST(SimServerTest, StaggeredArrival) {
  SimServer server;
  auto a = server.Submit(4.0);
  server.AdvanceTo(2.0);  // a has 2.0 left
  auto b = server.Submit(1.0);
  // Shared: a finishes its 2.0 at rate 1/2 while b burns 1.0; b done at
  // t = 2 + 2 = 4 (1.0 work at rate 1/2); a then has 1.0 left alone:
  // done at 5.
  server.AdvanceTo(100.0);
  EXPECT_DOUBLE_EQ(server.CompletionTime(b), 4.0);
  EXPECT_DOUBLE_EQ(server.CompletionTime(a), 5.0);
}

TEST(SimServerTest, CancelRemovesJob) {
  SimServer server;
  auto a = server.Submit(4.0);
  auto b = server.Submit(4.0);
  server.AdvanceTo(2.0);  // both have 3.0 left
  server.Cancel(a);
  EXPECT_FALSE(server.IsActive(a));
  server.AdvanceTo(100.0);
  EXPECT_FALSE(server.IsComplete(a));
  // b ran alone after the cancel: 3.0 remaining -> done at 5.0.
  EXPECT_DOUBLE_EQ(server.CompletionTime(b), 5.0);
}

TEST(SimServerTest, ZeroWorkCompletesImmediately) {
  SimServer server;
  server.AdvanceTo(3.0);
  auto job = server.Submit(0.0);
  EXPECT_TRUE(server.IsComplete(job));
  EXPECT_DOUBLE_EQ(server.CompletionTime(job), 3.0);
}

TEST(SimServerTest, RunUntilComplete) {
  SimServer server;
  auto slow = server.Submit(10.0);
  auto fast = server.Submit(1.0);
  double done = server.RunUntilComplete(fast);
  EXPECT_DOUBLE_EQ(done, 2.0);  // 1.0 work at rate 1/2
  EXPECT_TRUE(server.IsActive(slow));
  EXPECT_DOUBLE_EQ(server.RunUntilComplete(slow), 11.0);
}

TEST(SimServerTest, AdvancePastIdlePeriods) {
  SimServer server;
  server.AdvanceTo(5.0);
  EXPECT_DOUBLE_EQ(server.now(), 5.0);
  auto job = server.Submit(1.0);
  server.AdvanceTo(6.0);
  EXPECT_TRUE(server.IsComplete(job));
  EXPECT_DOUBLE_EQ(server.NextCompletionTime(), SimServer::kNever);
}

TEST(SimServerTest, WorkConservationRandomized) {
  // Property: total delivered service equals total submitted work once
  // everything completes, and each job's completion time is >= its
  // submit time + its work (sharing can only stretch).
  Rng rng(77);
  SimServer server;
  struct JobInfo {
    SimServer::JobId id;
    double submit_time;
    double work;
  };
  std::vector<JobInfo> jobs;
  double total_work = 0;
  for (int i = 0; i < 50; i++) {
    server.AdvanceTo(server.now() + rng.NextDouble(0, 2));
    double work = rng.NextDouble(0.1, 3.0);
    auto id = server.Submit(work);
    jobs.push_back({id, server.now(), work});
    total_work += work;
  }
  while (server.active_jobs() > 0) {
    server.AdvanceTo(server.NextCompletionTime());
  }
  EXPECT_NEAR(server.delivered_work(), total_work, 1e-6);
  for (const auto& job : jobs) {
    double done = server.CompletionTime(job.id);
    EXPECT_GE(done + 1e-9, job.submit_time + job.work);
  }
}

TEST(SimServerTest, ManySimultaneousCompletions) {
  SimServer server;
  std::vector<SimServer::JobId> ids;
  for (int i = 0; i < 8; i++) ids.push_back(server.Submit(1.0));
  server.AdvanceTo(8.0);
  for (auto id : ids) {
    ASSERT_TRUE(server.IsComplete(id));
    EXPECT_NEAR(server.CompletionTime(id), 8.0, 1e-9);
  }
}

}  // namespace
}  // namespace sqp
