// Doc-drift guard: the fault points registered at runtime and the
// catalogue in docs/FAULT_POINTS.md must agree in both directions. A
// new fault point without a doc row fails here, as does a doc row whose
// point no longer exists in the code.
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/cost_meter.h"
#include "common/fault_injector.h"
#include "db/replicated_manifest.h"
#include "storage/sharded_router.h"

#ifndef SQP_FAULT_POINTS_DOC
#error "build must define SQP_FAULT_POINTS_DOC (path to docs/FAULT_POINTS.md)"
#endif

namespace sqp {
namespace {

/// Concrete per-node names ("node3.disk.read") collapse onto their
/// documented template ("node<k>.disk.read").
std::string Normalize(const std::string& point) {
  static const std::regex node_re("^node[0-9]+\\.");
  return std::regex_replace(point, node_re, "node<k>.");
}

/// Every backtick-quoted name in the *first cell* of each table row of
/// the "## Fault points" section. Other cells mention status codes and
/// glob patterns in backticks, so only the name column is parsed.
std::set<std::string> DocumentedPoints(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::set<std::string> points;
  std::string line;
  bool in_section = false;
  while (std::getline(in, line)) {
    if (line.rfind("## ", 0) == 0) {
      in_section = line == "## Fault points";
      continue;
    }
    if (!in_section || line.empty() || line[0] != '|') continue;
    size_t cell_end = line.find('|', 1);
    if (cell_end == std::string::npos) continue;
    const std::string cell = line.substr(0, cell_end);
    size_t pos = 0;
    while ((pos = cell.find('`', pos)) != std::string::npos) {
      size_t close = cell.find('`', pos + 1);
      if (close == std::string::npos) break;
      std::string name = cell.substr(pos + 1, close - pos - 1);
      if (!name.empty() && name != "---") points.insert(name);
      pos = close + 1;
    }
  }
  return points;
}

std::string JoinSet(const std::set<std::string>& set) {
  std::ostringstream out;
  for (const auto& s : set) out << "  " << s << "\n";
  return out.str();
}

TEST(FaultPointDriftTest, RegisteredPointsMatchTheDocCatalogue) {
  // Construct one of everything that registers fault points at runtime,
  // so the registered set reflects a real multi-node stack, not just
  // the canonical builtin list.
  CostMeter meter;
  ShardedStorageRouter single(&meter, 1);
  ShardedStorageRouter sharded(&meter, 3);
  ReplicatedManifest manifest(3);

  std::set<std::string> registered;
  for (const auto& point : FaultInjector::Global().RegisteredPoints()) {
    registered.insert(Normalize(point));
  }
  std::set<std::string> documented = DocumentedPoints(SQP_FAULT_POINTS_DOC);

  std::set<std::string> undocumented;
  for (const auto& p : registered) {
    if (documented.count(p) == 0) undocumented.insert(p);
  }
  std::set<std::string> stale;
  for (const auto& p : documented) {
    if (registered.count(p) == 0) stale.insert(p);
  }
  EXPECT_TRUE(undocumented.empty())
      << "fault points registered in code but missing from "
         "docs/FAULT_POINTS.md:\n"
      << JoinSet(undocumented);
  EXPECT_TRUE(stale.empty())
      << "fault points documented in docs/FAULT_POINTS.md but never "
         "registered by the code:\n"
      << JoinSet(stale);
  // Belt and braces: the doc parser found a plausible table at all.
  EXPECT_GE(documented.size(), 8u);
}

}  // namespace
}  // namespace sqp
