// Speculation engine: the paper's operating conventions (§3.1) —
// asynchronous issue, cancellation on edits and at GO, garbage
// collection, the one-outstanding rule — plus the Speculator's choice
// behaviour and the completion-time abandon guard.
#include "speculation/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "speculation/speculator.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::RsJoin;
using testutil::Sel;

TraceEvent SelAdd(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kAddSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent SelDel(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kRemoveSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent JoinAdd(JoinPred j) {
  TraceEvent e;
  e.type = TraceEventType::kAddJoin;
  e.join = std::move(j);
  return e;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reset(testutil::MakeTwoTableDb(2000, 6000));
    db_->ColdStart();
    engine_ = std::make_unique<SpeculationEngine>(db_.get(), &server_);
  }

  SelectionPred SelectiveSel() {
    return Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  }

  std::unique_ptr<Database> db_;
  SimServer server_;
  std::unique_ptr<SpeculationEngine> engine_;
};

TEST_F(EngineTest, IssuesManipulationOnBeneficialEdit) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  EXPECT_EQ(engine_->stats().manipulations_issued, 1u);
  EXPECT_EQ(server_.active_jobs(), 1u);
  // Not yet visible: the view registers only at completion.
  EXPECT_EQ(db_->views().size(), 0u);
}

TEST_F(EngineTest, CompletionRegistersView) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  server_.AdvanceTo(100.0);
  // The engine syncs lazily on its next callback.
  ASSERT_TRUE(engine_->OnQueryResult(100.0).ok());
  EXPECT_EQ(engine_->stats().manipulations_completed, 1u);
  EXPECT_EQ(db_->views().size(), 1u);
  EXPECT_EQ(engine_->live_views().size(), 1u);
}

TEST_F(EngineTest, OneOutstandingRule) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  // Second beneficial edit while the first manipulation runs: no issue.
  ASSERT_TRUE(engine_->OnUserEvent(
                  SelAdd(Sel("s", "s_c", CompareOp::kLt, Value(int64_t{3}))),
                  0.1)
                  .ok());
  EXPECT_EQ(engine_->stats().manipulations_issued, 1u);
  EXPECT_EQ(server_.active_jobs(), 1u);
}

TEST_F(EngineTest, EditRemovingBenefitCancels) {
  SelectionPred sel = SelectiveSel();
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(sel), 0.0).ok());
  ASSERT_EQ(engine_->stats().manipulations_issued, 1u);
  std::string spec_table = "spec_mv_0";
  EXPECT_NE(db_->catalog().GetTable(spec_table), nullptr);

  // Removing the predicate makes the materialization useless.
  ASSERT_TRUE(engine_->OnUserEvent(SelDel(sel), 0.5).ok());
  EXPECT_EQ(engine_->stats().cancelled_by_edit, 1u);
  EXPECT_EQ(server_.active_jobs(), 0u);
  // The half-built table was rolled back.
  EXPECT_EQ(db_->catalog().GetTable(spec_table), nullptr);
}

TEST_F(EngineTest, IncompleteManipulationCancelledAtGo) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  // GO arrives before the manipulation's simulated completion.
  ASSERT_TRUE(engine_->OnGo(0.001).ok());
  EXPECT_EQ(engine_->stats().cancelled_at_go, 1u);
  EXPECT_EQ(engine_->stats().manipulations_completed, 0u);
  EXPECT_EQ(db_->views().size(), 0u);
}

TEST_F(EngineTest, CompletedManipulationSurvivesGo) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  server_.AdvanceTo(50.0);
  ASSERT_TRUE(engine_->OnGo(50.0).ok());
  EXPECT_EQ(engine_->stats().manipulations_completed, 1u);
  EXPECT_EQ(engine_->stats().cancelled_at_go, 0u);
  // Inter-query locality: the view persists after GO while the partial
  // query still implies it.
  EXPECT_EQ(db_->views().size(), 1u);
}

TEST_F(EngineTest, GarbageCollectionOnIrrelevance) {
  SelectionPred sel = SelectiveSel();
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(sel), 0.0).ok());
  server_.AdvanceTo(50.0);
  ASSERT_TRUE(engine_->OnGo(50.0).ok());
  ASSERT_EQ(db_->views().size(), 1u);
  // Next formulation: the user drops the predicate -> GC.
  ASSERT_TRUE(engine_->OnUserEvent(SelDel(sel), 60.0).ok());
  EXPECT_EQ(engine_->stats().views_garbage_collected, 1u);
  EXPECT_EQ(db_->views().size(), 0u);
  EXPECT_TRUE(engine_->live_views().empty());
}

TEST_F(EngineTest, DisabledEngineIssuesNothing) {
  SpeculationEngineOptions options;
  options.enabled = false;
  SpeculationEngine off(db_.get(), &server_, options);
  ASSERT_TRUE(off.OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  EXPECT_EQ(off.stats().manipulations_issued, 0u);
}

TEST_F(EngineTest, PartialTracksEvents) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  ASSERT_TRUE(engine_->OnUserEvent(JoinAdd(RsJoin()), 1.0).ok());
  EXPECT_EQ(engine_->partial().selections().size(), 1u);
  EXPECT_EQ(engine_->partial().joins().size(), 1u);
}

TEST_F(EngineTest, ShutdownRemovesEverything) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  server_.AdvanceTo(50.0);
  ASSERT_TRUE(engine_->OnGo(50.0).ok());
  ASSERT_EQ(db_->views().size(), 1u);
  size_t tables_before = db_->catalog().TableNames().size();
  ASSERT_TRUE(engine_->Shutdown().ok());
  EXPECT_EQ(db_->views().size(), 0u);
  EXPECT_EQ(db_->catalog().TableNames().size(), tables_before - 1);
}

TEST_F(EngineTest, ShutdownReleasesAllStoragePages) {
  // Leak-freedom on the happy path: after a session with completed,
  // in-flight, and garbage-collected manipulations, Shutdown() restores
  // the disk's live-page count to exactly what the replay found.
  const uint64_t pages_before = db_->disk_manager().live_pages();
  const size_t tables_before = db_->catalog().TableNames().size();

  // Formulation 1 completes and survives GO.
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  server_.AdvanceTo(50.0);
  ASSERT_TRUE(engine_->OnGo(50.0).ok());
  ASSERT_TRUE(engine_->OnQueryResult(51.0).ok());
  // Formulation 2 grows the query; leave its manipulation in flight.
  ASSERT_TRUE(engine_->OnUserEvent(JoinAdd(RsJoin()), 60.0).ok());
  EXPECT_GT(db_->disk_manager().live_pages(), pages_before);

  ASSERT_TRUE(engine_->Shutdown().ok());
  EXPECT_TRUE(engine_->live_views().empty());
  EXPECT_EQ(db_->views().size(), 0u);
  EXPECT_EQ(db_->catalog().TableNames().size(), tables_before);
  EXPECT_EQ(db_->disk_manager().live_pages(), pages_before);
}

TEST_F(EngineTest, AbandonGuardDropsUselessResults) {
  // An unselective materialization looks mildly beneficial under the
  // optimistic estimate but its actual result is as big as the base
  // table: the completion-time re-check must drop it. Use a direct
  // speculator check first to ensure the setup is as intended.
  SelectionPred wide = Sel("r", "r_a", CompareOp::kLe, Value(int64_t{99}));
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(wide), 0.0).ok());
  if (engine_->stats().manipulations_issued == 0) {
    // The cost model already rejected it at issue time — equally fine;
    // the guard is then unreachable for this input.
    SUCCEED();
    return;
  }
  server_.AdvanceTo(100.0);
  ASSERT_TRUE(engine_->OnQueryResult(100.0).ok());
  EXPECT_EQ(db_->views().size(), 0u);
  EXPECT_EQ(engine_->stats().abandoned_at_completion +
                engine_->stats().manipulations_completed,
            engine_->stats().manipulations_issued);
}

TEST_F(EngineTest, WaitPolicyDelaysGoForNearCompleteManipulation) {
  SpeculationEngineOptions options;
  options.go_policy = GoPolicy::kWaitIfWorthwhile;
  SpeculationEngine engine(db_.get(), &server_, options);
  ASSERT_TRUE(engine.OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  ASSERT_EQ(engine.stats().manipulations_issued, 1u);

  // GO arrives with the manipulation nearly done: waiting a fraction of
  // a second to use the small materialization beats a full base scan.
  double almost = server_.NextCompletionTime() - 0.05;
  server_.AdvanceTo(almost);
  auto submit = engine.OnGo(almost);
  ASSERT_TRUE(submit.ok());
  EXPECT_GT(*submit, almost);
  EXPECT_EQ(engine.stats().waits_at_go, 1u);
  EXPECT_EQ(engine.stats().cancelled_at_go, 0u);

  server_.AdvanceTo(*submit);
  ASSERT_TRUE(engine.ResolveWait(*submit).ok());
  EXPECT_EQ(engine.stats().manipulations_completed, 1u);
  EXPECT_EQ(db_->views().size(), 1u);  // usable by the final query
}

TEST_F(EngineTest, WaitPolicyStillCancelsHopelessManipulations) {
  SpeculationEngineOptions options;
  options.go_policy = GoPolicy::kWaitIfWorthwhile;
  SpeculationEngine engine(db_.get(), &server_, options);
  ASSERT_TRUE(engine.OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  // GO immediately: nearly all the manipulation work remains, which is
  // more than the query would save. The conservative rule applies.
  auto submit = engine.OnGo(0.001);
  ASSERT_TRUE(submit.ok());
  EXPECT_DOUBLE_EQ(*submit, 0.001);
  EXPECT_EQ(engine.stats().cancelled_at_go, 1u);
  EXPECT_EQ(engine.stats().waits_at_go, 0u);
}

TEST_F(EngineTest, MaxOutstandingPipelinesManipulations) {
  SpeculationEngineOptions options;
  options.max_outstanding = 3;
  SpeculationEngine engine(db_.get(), &server_, options);
  // One edit creating several beneficial candidates (two selections +
  // the join): the engine may fill all three slots at once.
  ASSERT_TRUE(engine.OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  ASSERT_TRUE(engine.OnUserEvent(JoinAdd(RsJoin()), 0.5).ok());
  ASSERT_TRUE(engine
                  .OnUserEvent(SelAdd(Sel("s", "s_c", CompareOp::kLt,
                                          Value(int64_t{3}))),
                               1.0)
                  .ok());
  EXPECT_GE(engine.stats().manipulations_issued, 2u);
  EXPECT_GE(server_.active_jobs(), 2u);
  // All concurrent jobs share capacity, complete, and register.
  server_.AdvanceTo(200.0);
  ASSERT_TRUE(engine.OnQueryResult(200.0).ok());
  EXPECT_EQ(engine.stats().manipulations_completed +
                engine.stats().abandoned_at_completion,
            engine.stats().manipulations_issued);
  ASSERT_TRUE(engine.Shutdown().ok());
}

TEST_F(EngineTest, LoadAwareIssuingDefersToBusyServer) {
  SpeculationEngineOptions options;
  options.only_issue_when_idle = true;
  SpeculationEngine engine(db_.get(), &server_, options);
  // A foreign job keeps the server busy.
  auto foreign = server_.Submit(100.0);
  ASSERT_TRUE(engine.OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  EXPECT_EQ(engine.stats().manipulations_issued, 0u);
  // Once the server drains, the next event issues normally.
  server_.Cancel(foreign);
  ASSERT_TRUE(engine
                  .OnUserEvent(SelAdd(Sel("s", "s_c", CompareOp::kLt,
                                          Value(int64_t{3}))),
                               1.0)
                  .ok());
  EXPECT_EQ(engine.stats().manipulations_issued, 1u);
}

TEST_F(EngineTest, LearnerTrainsAtGo) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  size_t before = engine_->learner().survival().observed_formulations();
  ASSERT_TRUE(engine_->OnGo(10.0).ok());
  EXPECT_EQ(engine_->learner().survival().observed_formulations(),
            before + 1);
}

// ----------------------------------------------------------- Speculator

TEST_F(EngineTest, SpeculatorPrefersLargerBenefit) {
  Learner learner;
  SpeculationCostModel model(db_.get(), &learner);
  Speculator speculator(db_.get(), &model);

  QueryGraph partial;
  partial.AddSelection(SelectiveSel());
  partial.AddJoin(RsJoin());
  SpeculationDecision decision = speculator.Decide(partial, 0);
  ASSERT_TRUE(decision.chosen.has_value());
  EXPECT_GE(decision.considered.size(), 2u);
  // The chosen one has the minimum score among all considered.
  for (const auto& [m, eval] : decision.considered) {
    EXPECT_LE(decision.evaluation.score, eval.score + 1e-12);
  }
}

TEST_F(EngineTest, SpeculatorRespectsMinBenefit) {
  Learner learner;
  SpeculationCostModel model(db_.get(), &learner);
  SpeculatorOptions options;
  options.min_benefit_seconds = 1e9;  // nothing can clear this bar
  Speculator speculator(db_.get(), &model, options);
  QueryGraph partial;
  partial.AddSelection(SelectiveSel());
  SpeculationDecision decision = speculator.Decide(partial, 0);
  EXPECT_FALSE(decision.chosen.has_value());
  EXPECT_FALSE(decision.considered.empty());
}

}  // namespace
}  // namespace sqp
