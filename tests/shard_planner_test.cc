// Shard-aware planning and speculation placement (DESIGN.md §14):
// co-partitioned joins price below shuffling ones, placement choices
// replay deterministically, the simulated transfer charge is immune to
// injected faults, and a single-node database plans bit-identically to
// a placement-blind planner.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/metrics_registry.h"
#include "db/database.h"
#include "speculation/cost_model.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::Sel;

/// 4-node database with a dimension table `r` and two fact tables of
/// identical shape and FK distribution: `s` carries the FK to r in its
/// FIRST column (the shard column, so r⋈s is co-partitioned) and `t`
/// hides it in the second (r⋈t must shuffle).
std::unique_ptr<Database> MakeShardedDb(size_t nodes = 4, uint64_t seed = 11,
                                        size_t rows_r = 800,
                                        size_t rows_fact = 2400) {
  DatabaseOptions options;
  options.buffer_pool_pages = 256;
  options.storage_nodes = nodes;
  auto db = std::make_unique<Database>(options);

  Schema r_schema({{"r_id", TypeId::kInt64}, {"r_pay", TypeId::kInt64}});
  Schema s_schema({{"s_rid", TypeId::kInt64},
                   {"s_seq", TypeId::kInt64},
                   {"s_pay", TypeId::kInt64}});
  Schema t_schema({{"t_id", TypeId::kInt64},
                   {"t_rid", TypeId::kInt64},
                   {"t_pay", TypeId::kInt64}});
  EXPECT_TRUE(db->CreateTable("r", r_schema).ok());
  EXPECT_TRUE(db->CreateTable("s", s_schema).ok());
  EXPECT_TRUE(db->CreateTable("t", t_schema).ok());

  Rng rng(seed);
  std::vector<Tuple> r_rows;
  for (size_t i = 0; i < rows_r; i++) {
    r_rows.push_back(
        Tuple{Value(static_cast<int64_t>(i)), Value(rng.NextInt(0, 99))});
  }
  std::vector<Tuple> s_rows, t_rows;
  for (size_t i = 0; i < rows_fact; i++) {
    int64_t fk = rng.NextInt(0, static_cast<int64_t>(rows_r) - 1);
    int64_t pay = rng.NextInt(0, 999);
    s_rows.push_back(
        Tuple{Value(fk), Value(static_cast<int64_t>(i)), Value(pay)});
    t_rows.push_back(
        Tuple{Value(static_cast<int64_t>(i)), Value(fk), Value(pay)});
  }
  EXPECT_TRUE(db->BulkLoad("r", r_rows).ok());
  EXPECT_TRUE(db->BulkLoad("s", s_rows).ok());
  EXPECT_TRUE(db->BulkLoad("t", t_rows).ok());
  return db;
}

QueryGraph LocalJoin() {
  QueryGraph q;
  q.AddJoin(Join("r", "r_id", "s", "s_rid"));
  return q;
}

QueryGraph ShuffleJoin() {
  QueryGraph q;
  q.AddJoin(Join("r", "r_id", "t", "t_rid"));
  return q;
}

uint64_t CrossShardCounter() {
  return MetricsRegistry::Global()
      .GetCounter("storage.node.cross_shard_pages")
      ->value();
}

TEST(ShardPlannerTest, CoPartitionedJoinIsPricedBelowShufflingJoin) {
  auto db = MakeShardedDb();
  auto local = db->planner().Plan(LocalJoin());
  auto shuffle = db->planner().Plan(ShuffleJoin());
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(shuffle.ok());
  // Same cardinalities and widths on both sides; the only difference is
  // the shuffling join's transfer term, so strict inequality.
  EXPECT_LT(local->est_cost, shuffle->est_cost);
  EXPECT_NE(local->Explain().find("[shard-local]"), std::string::npos)
      << local->Explain();
  EXPECT_NE(shuffle->Explain().find("[cross-shard"), std::string::npos)
      << shuffle->Explain();
}

TEST(ShardPlannerTest, ExecutionChargesTransferOnlyOnCrossShardJoins) {
  auto db = MakeShardedDb();
  uint64_t before = CrossShardCounter();
  auto local = db->Execute(LocalJoin());
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(CrossShardCounter() - before, 0u);

  before = CrossShardCounter();
  auto shuffle = db->Execute(ShuffleJoin());
  ASSERT_TRUE(shuffle.ok());
  EXPECT_GT(CrossShardCounter() - before, 0u);
  EXPECT_EQ(local->row_count, shuffle->row_count);
  // The transfer stretches the shuffling join's simulated time.
  EXPECT_GT(shuffle->seconds, local->seconds);
}

TEST(ShardPlannerTest, ExplainAnalyzeReportsCrossShardActuals) {
  auto db = MakeShardedDb();
  ExecuteOptions exec;
  exec.explain_analyze = true;
  auto local = db->Execute(LocalJoin(), exec);
  auto shuffle = db->Execute(ShuffleJoin(), exec);
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(shuffle.ok());
  ASSERT_NE(local->profile, nullptr);
  ASSERT_NE(shuffle->profile, nullptr);
  // Shard-local joins never show transfer actuals; the shuffling join
  // reports them on the operator that charged (text and JSON).
  EXPECT_EQ(local->profile->FormatText().find("xshard="), std::string::npos)
      << local->profile->FormatText();
  EXPECT_NE(shuffle->profile->FormatText().find("xshard="),
            std::string::npos)
      << shuffle->profile->FormatText();
  EXPECT_NE(shuffle->profile->FormatJson().find("\"cross_shard_pages\":"),
            std::string::npos);
  EXPECT_NE(shuffle->profile->FormatText().find("[cross-shard]"),
            std::string::npos);
  EXPECT_NE(local->profile->FormatText().find("[shard-local]"),
            std::string::npos);
}

TEST(ShardPlannerTest, PlacementChoiceIsDeterministicAcrossReplays) {
  // Two identically-seeded databases must make bit-identical placement
  // decisions: same plans, and the speculation cost model picks the
  // same home node with the same priced evaluation.
  auto db_a = MakeShardedDb();
  auto db_b = MakeShardedDb();

  auto plan_a = db_a->planner().Plan(ShuffleJoin());
  auto plan_b = db_b->planner().Plan(ShuffleJoin());
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_b.ok());
  EXPECT_EQ(plan_a->Explain(), plan_b->Explain());
  EXPECT_EQ(plan_a->est_cost, plan_b->est_cost);

  Learner learner_a, learner_b;
  SpeculationCostModel model_a(db_a.get(), &learner_a);
  SpeculationCostModel model_b(db_b.get(), &learner_b);
  Manipulation m;
  m.type = ManipulationType::kMaterializeQuery;
  m.target_query.AddSelection(
      Sel("r", "r_pay", CompareOp::kLt, Value(int64_t{10})));
  auto eval_a = model_a.Evaluate(m, 0);
  auto eval_b = model_b.Evaluate(m, 0);
  // Multi-node store: a concrete home node was chosen, deterministically.
  EXPECT_NE(eval_a.home_node, PageAllocOptions::kAnyNode);
  EXPECT_LT(eval_a.home_node, 4u);
  EXPECT_EQ(eval_a.home_node, eval_b.home_node);
  EXPECT_EQ(eval_a.score, eval_b.score);
  EXPECT_EQ(eval_a.estimated_duration, eval_b.estimated_duration);
  EXPECT_EQ(eval_a.placement_transfer_pages, eval_b.placement_transfer_pages);
}

TEST(ShardPlannerTest, CrossShardChargesAreIdenticalUnderInjectedFaults) {
  // The transfer charge is a plan-time constant, charged once at
  // executor Init: disk faults perturbing the execution (reads failing
  // over to the shadow copy) must not move it by a single page.
  uint64_t clean_pages = 0;
  uint64_t clean_rows = 0;
  {
    auto db = MakeShardedDb();
    uint64_t before = CrossShardCounter();
    auto result = db->Execute(ShuffleJoin());
    ASSERT_TRUE(result.ok());
    clean_pages = CrossShardCounter() - before;
    clean_rows = result->row_count;
    EXPECT_GT(clean_pages, 0u);
  }
  {
    auto db = MakeShardedDb();
    FaultSpec spec = FaultSpec::EveryNth(3);
    spec.only_in_region = false;  // hit final-query reads too
    FaultInjector::Global().Arm("node1.disk.read", spec);
    uint64_t before = CrossShardCounter();
    auto result = db->Execute(ShuffleJoin());
    FaultInjector::Global().Reset();
    ASSERT_TRUE(result.ok());  // replicated reads fail over
    EXPECT_EQ(CrossShardCounter() - before, clean_pages);
    EXPECT_EQ(result->row_count, clean_rows);
  }
}

TEST(ShardPlannerTest, SingleNodePlansAreBitIdenticalToPlacementBlind) {
  // A one-node database must plan exactly as a planner constructed with
  // no placement provider at all: same explain text, same costs, no
  // placement tags, no transfer charges.
  auto db = testutil::MakeTwoTableDb(800, 2400);
  std::unique_ptr<Database> holder(db);
  QueryGraph q;
  q.AddJoin(testutil::RsJoin());
  q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{40})));

  auto placed = db->planner().Plan(q);
  ASSERT_TRUE(placed.ok());
  Planner blind(&db->catalog(), db->planner().estimator().config());
  auto bare = blind.Plan(q);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(placed->Explain(), bare->Explain());
  EXPECT_EQ(placed->est_cost, bare->est_cost);
  EXPECT_EQ(placed->Explain().find("[shard-local]"), std::string::npos);
  EXPECT_EQ(placed->Explain().find("[cross-shard"), std::string::npos);

  uint64_t before = CrossShardCounter();
  auto result = db->Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(CrossShardCounter() - before, 0u);

  // And the speculation cost model leaves placement untouched.
  Learner learner;
  SpeculationCostModel model(db, &learner);
  Manipulation m;
  m.type = ManipulationType::kMaterializeQuery;
  m.target_query.AddSelection(
      Sel("r", "r_a", CompareOp::kLt, Value(int64_t{10})));
  auto eval = model.Evaluate(m, 0);
  EXPECT_EQ(eval.home_node, PageAllocOptions::kAnyNode);
  EXPECT_EQ(eval.placement_transfer_pages, 0.0);
}

}  // namespace
}  // namespace sqp
