#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace sqp {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.NextUint64() == b.NextUint64()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextRangeStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.NextRange(7), 7u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; i++) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; i++) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(12);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; i++) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(13);
  const int n = 20001;
  std::vector<double> vs(n);
  for (auto& v : vs) v = rng.NextLogNormal(2.0, 0.5);
  std::sort(vs.begin(), vs.end());
  EXPECT_NEAR(vs[n / 2], std::exp(2.0), 0.3);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(14);
  double sum = 0;
  const int n = 30000;
  for (int i = 0; i < n; i++) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ForkIndependence) {
  Rng a(55);
  Rng b = a.Fork();
  // Forked stream differs from parent's continuation.
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(ZipfTest, RankZeroMostPopular) {
  Rng rng(20);
  ZipfGenerator zipf(100, 0.85);
  std::map<uint64_t, size_t> counts;
  for (int i = 0; i < 50000; i++) counts[zipf.Next(rng)]++;
  // Rank 0 strictly dominates rank 10, which dominates rank 50.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[50]);
}

TEST(ZipfTest, CoversDomain) {
  Rng rng(21);
  ZipfGenerator zipf(10, 0.85);
  std::map<uint64_t, size_t> counts;
  for (int i = 0; i < 20000; i++) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 10u);
    counts[v]++;
  }
  EXPECT_EQ(counts.size(), 10u);
}

TEST(ZipfTest, ThetaControlsSkew) {
  Rng rng1(22), rng2(22);
  ZipfGenerator mild(100, 0.5), heavy(100, 1.2);
  size_t mild_top = 0, heavy_top = 0;
  for (int i = 0; i < 20000; i++) {
    if (mild.Next(rng1) == 0) mild_top++;
    if (heavy.Next(rng2) == 0) heavy_top++;
  }
  EXPECT_GT(heavy_top, mild_top);
}

}  // namespace
}  // namespace sqp
