// Edge cases across modules: binding failures, planner limits, empty
// inputs, logging plumbing.
#include <gtest/gtest.h>

#include <memory>

#include "common/logging.h"
#include "exec/expression.h"
#include "optimizer/planner.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::Sel;

TEST(ExpressionTest, EmptyConjunctionIsTrue) {
  EXPECT_TRUE(EvalConjunction({}, Tuple{Value(int64_t{1})}));
}

TEST(ExpressionTest, BindSelectionResolvesIndex) {
  Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kDouble}});
  auto bound =
      BindSelection(Sel("t", "b", CompareOp::kGt, Value(1.5)), schema);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->column_index, 1u);
  EXPECT_TRUE(bound->Eval(Tuple{Value(int64_t{0}), Value(2.0)}));
  EXPECT_FALSE(bound->Eval(Tuple{Value(int64_t{0}), Value(1.0)}));
}

TEST(ExpressionTest, BindSelectionUnknownColumnFails) {
  Schema schema({{"a", TypeId::kInt64}});
  auto bound =
      BindSelection(Sel("t", "zzz", CompareOp::kGt, Value(1.5)), schema);
  EXPECT_FALSE(bound.ok());
  // Batch binding propagates the first failure.
  auto batch = BindSelections({Sel("t", "a", CompareOp::kEq, Value(int64_t{1})),
                               Sel("t", "zzz", CompareOp::kEq,
                                   Value(int64_t{1}))},
                              schema);
  EXPECT_FALSE(batch.ok());
}

TEST(ExpressionTest, AllCompareOpsEvaluate) {
  Schema schema({{"a", TypeId::kInt64}});
  Tuple three{Value(int64_t{3})};
  struct Case {
    CompareOp op;
    int64_t constant;
    bool expect;
  } cases[] = {
      {CompareOp::kEq, 3, true},  {CompareOp::kEq, 4, false},
      {CompareOp::kNe, 3, false}, {CompareOp::kNe, 4, true},
      {CompareOp::kLt, 4, true},  {CompareOp::kLt, 3, false},
      {CompareOp::kLe, 3, true},  {CompareOp::kLe, 2, false},
      {CompareOp::kGt, 2, true},  {CompareOp::kGt, 3, false},
      {CompareOp::kGe, 3, true},  {CompareOp::kGe, 4, false},
  };
  for (const auto& c : cases) {
    auto bound =
        BindSelection(Sel("t", "a", c.op, Value(c.constant)), schema);
    ASSERT_TRUE(bound.ok());
    EXPECT_EQ(bound->Eval(three), c.expect)
        << CompareOpName(c.op) << " " << c.constant;
  }
}

TEST(PlannerEdgeTest, EmptyQueryIsAnError) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(10, 10));
  EXPECT_FALSE(db->planner().Plan(QueryGraph()).ok());
  EXPECT_FALSE(db->Execute(QueryGraph()).ok());
}

TEST(PlannerEdgeTest, ManyRelationCrossProductStillPlans) {
  // A dozen tiny relations with no joins: the DP's cross-product
  // fallback must cover them all.
  DatabaseOptions options;
  Database db(options);
  QueryGraph q;
  for (int i = 0; i < 12; i++) {
    std::string name = "t" + std::to_string(i);
    Schema schema({{"c" + std::to_string(i), TypeId::kInt64}});
    ASSERT_TRUE(db.CreateTable(name, schema).ok());
    ASSERT_TRUE(db.BulkLoad(name, {Tuple{Value(int64_t{i})}}).ok());
    q.AddRelation(name);
  }
  auto result = db.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, 1u);  // 1-row cross product of 12 tables

  // Beyond 16 scan units the planner refuses (documented limit).
  for (int i = 12; i < 17; i++) {
    std::string name = "t" + std::to_string(i);
    Schema schema({{"c" + std::to_string(i), TypeId::kInt64}});
    ASSERT_TRUE(db.CreateTable(name, schema).ok());
    q.AddRelation(name);
  }
  EXPECT_FALSE(db.planner().Plan(q).ok());
}

TEST(PlannerEdgeTest, EmptyTablePlansAndExecutes) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(100, 100));
  Schema schema({{"v", TypeId::kInt64}});
  ASSERT_TRUE(db->CreateTable("void", schema).ok());
  QueryGraph q;
  q.AddRelation("void");
  auto result = db->Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, 0u);
}

TEST(LoggingTest, LevelGatesMessages) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  SQP_LOG_ERROR << "this must not crash even when gated";
  SetLogLevel(LogLevel::kError);
  SQP_LOG_DEBUG << "below threshold";
  SetLogLevel(before);
  SUCCEED();
}

TEST(MaterializeEdgeTest, MaterializingEmptyResultWorks) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(100, 100));
  QueryGraph q;
  q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{-1})));
  auto mat = db->Materialize(q, "empty_view");
  ASSERT_TRUE(mat.ok());
  EXPECT_EQ(mat->row_count, 0u);
  // The empty view still rewrites correctly (to an empty scan).
  ExecuteOptions opts;
  opts.view_mode = ViewMode::kForced;
  auto result = db->Execute(q, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count, 0u);
}

}  // namespace
}  // namespace sqp
