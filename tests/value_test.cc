#include "common/value.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value(int64_t{1}).type(), TypeId::kInt64);
  EXPECT_EQ(Value(1.5).type(), TypeId::kDouble);
  EXPECT_EQ(Value("x").type(), TypeId::kString);
  EXPECT_TRUE(Value(1.5).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, IntComparison) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value(int64_t{5}), Value(int64_t{5}));
  EXPECT_GT(Value(int64_t{9}), Value(int64_t{-9}));
}

TEST(ValueTest, MixedNumericComparisonCoerces) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_LT(Value(int64_t{3}), Value(3.5));
  EXPECT_GT(Value(4.5), Value(int64_t{4}));
}

TEST(ValueTest, StringComparisonLexicographic) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("same"), Value("same"));
}

TEST(ValueTest, EqualNumericsHashEqual) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("k").Hash(), Value("k").Hash());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value(1.5).ToString(), "1.5000");
}

TEST(ValueTest, StorageSizeAccountsForStrings) {
  EXPECT_EQ(Value(int64_t{1}).StorageSize(), 8u);
  EXPECT_EQ(Value(1.0).StorageSize(), 8u);
  EXPECT_EQ(Value("abcd").StorageSize(), 8u);  // 4 header + 4 chars
}

TEST(ValueTest, NumericValue) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).NumericValue(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.25).NumericValue(), 2.25);
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_EQ(v.type(), TypeId::kInt64);
  EXPECT_EQ(v.AsInt64(), 0);
}

}  // namespace
}  // namespace sqp
