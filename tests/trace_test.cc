// Traces: event application semantics, final-query reconstruction,
// duration accounting, and (de)serialization round trips.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "trace/trace_generator.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::Sel;

TraceEvent SelAdd(double t, SelectionPred s) {
  TraceEvent e;
  e.timestamp = t;
  e.type = TraceEventType::kAddSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent SelDel(double t, SelectionPred s) {
  TraceEvent e;
  e.timestamp = t;
  e.type = TraceEventType::kRemoveSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent JoinAdd(double t, JoinPred j) {
  TraceEvent e;
  e.timestamp = t;
  e.type = TraceEventType::kAddJoin;
  e.join = std::move(j);
  return e;
}

TraceEvent JoinDel(double t, JoinPred j) {
  TraceEvent e;
  e.timestamp = t;
  e.type = TraceEventType::kRemoveJoin;
  e.join = std::move(j);
  return e;
}

TraceEvent Go(double t) {
  TraceEvent e;
  e.timestamp = t;
  e.type = TraceEventType::kGo;
  return e;
}

TEST(TraceApplyTest, RemoveSelectionDropsOrphanRelation) {
  QueryGraph g;
  auto sel = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  Trace::Apply(SelAdd(0, sel), &g);
  EXPECT_TRUE(g.HasRelation("r"));
  Trace::Apply(SelDel(1, sel), &g);
  EXPECT_FALSE(g.HasRelation("r"));
}

TEST(TraceApplyTest, RemoveSelectionKeepsJoinedRelation) {
  QueryGraph g;
  auto sel = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  Trace::Apply(JoinAdd(0, Join("r", "r_id", "s", "s_rid")), &g);
  Trace::Apply(SelAdd(1, sel), &g);
  Trace::Apply(SelDel(2, sel), &g);
  EXPECT_TRUE(g.HasRelation("r"));  // still joined
}

TEST(TraceApplyTest, RemoveJoinDropsOrphansOnBothSides) {
  QueryGraph g;
  auto join = Join("r", "r_id", "s", "s_rid");
  Trace::Apply(JoinAdd(0, join), &g);
  Trace::Apply(SelAdd(1, Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}))),
               &g);
  Trace::Apply(JoinDel(2, join), &g);
  EXPECT_TRUE(g.HasRelation("r"));   // kept: has a selection
  EXPECT_FALSE(g.HasRelation("s"));  // orphaned
}

TEST(TraceTest, FinalQueriesSnapshotAtEachGo) {
  Trace trace;
  auto sel = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  auto join = Join("r", "r_id", "s", "s_rid");
  trace.events = {SelAdd(1, sel), Go(5), JoinAdd(8, join), Go(12),
                  SelDel(15, sel), Go(20)};
  auto finals = trace.FinalQueries();
  ASSERT_EQ(finals.size(), 3u);
  EXPECT_EQ(finals[0].selections().size(), 1u);
  EXPECT_EQ(finals[0].joins().size(), 0u);
  EXPECT_EQ(finals[1].selections().size(), 1u);
  EXPECT_EQ(finals[1].joins().size(), 1u);
  EXPECT_EQ(finals[2].selections().size(), 0u);
  EXPECT_EQ(finals[2].joins().size(), 1u);
  EXPECT_EQ(trace.QueryCount(), 3u);
}

TEST(TraceTest, FormulationDurationsFirstEditToGo) {
  Trace trace;
  auto sel = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  trace.events = {SelAdd(2, sel), Go(10),
                  SelDel(12, sel), SelAdd(14, sel), Go(20)};
  auto durations = trace.FormulationDurations();
  ASSERT_EQ(durations.size(), 2u);
  EXPECT_DOUBLE_EQ(durations[0], 8.0);
  EXPECT_DOUBLE_EQ(durations[1], 8.0);
}

TEST(TraceTest, SerializeDeserializeRoundTrip) {
  Trace trace;
  trace.user_id = 9;
  trace.seed = 12345;
  trace.events = {
      SelAdd(1.25, Sel("r", "r_a", CompareOp::kLe, Value(int64_t{42}))),
      SelAdd(2.5, Sel("r", "r_b", CompareOp::kGt, Value(3.75))),
      SelAdd(3.0, Sel("r", "r_s", CompareOp::kEq, Value("alpha"))),
      JoinAdd(4.0, Join("r", "r_id", "s", "s_rid")),
      Go(9.0),
      JoinDel(11.0, Join("r", "r_id", "s", "s_rid")),
      Go(15.0),
  };
  std::string text = trace.Serialize();
  auto back = Trace::Deserialize(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->user_id, 9u);
  EXPECT_EQ(back->seed, 12345u);
  ASSERT_EQ(back->events.size(), trace.events.size());
  for (size_t i = 0; i < trace.events.size(); i++) {
    EXPECT_EQ(back->events[i].type, trace.events[i].type) << i;
    EXPECT_NEAR(back->events[i].timestamp, trace.events[i].timestamp, 1e-3);
  }
  EXPECT_EQ(back->events[0].selection.Key(), trace.events[0].selection.Key());
  EXPECT_EQ(back->events[2].selection.constant.AsString(), "alpha");
  EXPECT_EQ(back->events[3].join.Key(), trace.events[3].join.Key());
  // Reconstructed final queries are identical.
  auto f1 = trace.FinalQueries();
  auto f2 = back->FinalQueries();
  ASSERT_EQ(f1.size(), f2.size());
  for (size_t i = 0; i < f1.size(); i++) {
    EXPECT_EQ(f1[i].CanonicalKey(), f2[i].CanonicalKey());
  }
}

TEST(TraceTest, GeneratedTraceSurvivesRoundTrip) {
  UserModelParams params;
  Trace trace = GenerateTrace(params, 3, 999);
  auto back = Trace::Deserialize(trace.Serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->events.size(), trace.events.size());
  auto f1 = trace.FinalQueries();
  auto f2 = back->FinalQueries();
  ASSERT_EQ(f1.size(), f2.size());
  for (size_t i = 0; i < f1.size(); i++) {
    ASSERT_EQ(f1[i].CanonicalKey(), f2[i].CanonicalKey()) << "query " << i;
  }
}

TEST(TraceTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Trace::Deserialize("WHAT\t1.0\n").ok());
  EXPECT_FALSE(Trace::Deserialize("SEL_ADD\t1.0\tr\n").ok());
  EXPECT_FALSE(Trace::Deserialize("SEL_ADD\t1.0\tr\tc\t??\ti:1\n").ok());
  EXPECT_FALSE(Trace::Deserialize("SEL_ADD\t1.0\tr\tc\t<\tz:1\n").ok());
  EXPECT_TRUE(Trace::Deserialize("").ok());  // empty trace is fine
}

TEST(TraceFileTest, SaveAndLoadDirectory) {
  UserModelParams params;
  std::vector<Trace> traces;
  for (uint64_t u = 0; u < 3; u++) {
    traces.push_back(GenerateTrace(params, u, 100 + u));
  }
  std::string dir = ::testing::TempDir() + "/sqp_traces";
  ASSERT_TRUE(SaveTraces(traces, dir).ok());
  auto loaded = LoadTraces(dir);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 3u);
  for (size_t i = 0; i < 3; i++) {
    EXPECT_EQ((*loaded)[i].user_id, traces[i].user_id);
    EXPECT_EQ((*loaded)[i].events.size(), traces[i].events.size());
  }
  EXPECT_FALSE(LoadTraces("/nonexistent/dir").ok());
}

}  // namespace
}  // namespace sqp
