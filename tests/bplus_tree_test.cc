// B+-tree: correctness against a std::multimap reference, structural
// invariants, duplicates, range semantics, scan statistics.
#include "index/bplus_tree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace sqp {
namespace {

Rid MakeRid(uint64_t n) { return Rid{n, static_cast<uint16_t>(n % 7)}; }

TEST(KeyRangeTest, ContainsSemantics) {
  KeyRange r{Value(int64_t{3}), true, Value(int64_t{7}), false};
  EXPECT_FALSE(r.Contains(Value(int64_t{2})));
  EXPECT_TRUE(r.Contains(Value(int64_t{3})));
  EXPECT_TRUE(r.Contains(Value(int64_t{6})));
  EXPECT_FALSE(r.Contains(Value(int64_t{7})));
  EXPECT_TRUE(KeyRange::All().Contains(Value(int64_t{-100})));
  KeyRange exact = KeyRange::Exactly(Value(int64_t{5}));
  EXPECT_TRUE(exact.Contains(Value(int64_t{5})));
  EXPECT_FALSE(exact.Contains(Value(int64_t{6})));
}

TEST(BPlusTreeTest, EmptyScan) {
  BPlusTree tree;
  EXPECT_TRUE(tree.RangeScan(KeyRange::All()).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, SequentialInsertLookup) {
  BPlusTree tree(8);
  for (int64_t i = 0; i < 1000; i++) tree.Insert(Value(i), MakeRid(i));
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GT(tree.height(), 1u);

  auto rids = tree.RangeScan(KeyRange::Exactly(Value(int64_t{500})));
  ASSERT_EQ(rids.size(), 1u);
  EXPECT_EQ(rids[0].page_id, 500u);
}

TEST(BPlusTreeTest, ReverseInsertStaysSorted) {
  BPlusTree tree(8);
  for (int64_t i = 999; i >= 0; i--) tree.Insert(Value(i), MakeRid(i));
  EXPECT_TRUE(tree.CheckInvariants());
  auto rids = tree.RangeScan(KeyRange::All());
  ASSERT_EQ(rids.size(), 1000u);
  for (size_t i = 0; i < rids.size(); i++) EXPECT_EQ(rids[i].page_id, i);
}

TEST(BPlusTreeTest, DuplicateKeysAllReturned) {
  BPlusTree tree(8);
  for (uint64_t i = 0; i < 300; i++) {
    tree.Insert(Value(int64_t{42}), MakeRid(i));
  }
  tree.Insert(Value(int64_t{41}), MakeRid(1000));
  tree.Insert(Value(int64_t{43}), MakeRid(1001));
  auto rids = tree.RangeScan(KeyRange::Exactly(Value(int64_t{42})));
  EXPECT_EQ(rids.size(), 300u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, RangeBoundsInclusiveExclusive) {
  BPlusTree tree(8);
  for (int64_t i = 0; i < 100; i++) tree.Insert(Value(i), MakeRid(i));
  KeyRange incl{Value(int64_t{10}), true, Value(int64_t{20}), true};
  EXPECT_EQ(tree.RangeScan(incl).size(), 11u);
  KeyRange excl{Value(int64_t{10}), false, Value(int64_t{20}), false};
  EXPECT_EQ(tree.RangeScan(excl).size(), 9u);
  KeyRange lo_only{Value(int64_t{95}), true, std::nullopt, true};
  EXPECT_EQ(tree.RangeScan(lo_only).size(), 5u);
  KeyRange hi_only{std::nullopt, true, Value(int64_t{4}), false};
  EXPECT_EQ(tree.RangeScan(hi_only).size(), 4u);
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree tree(8);
  tree.Insert(Value("banana"), MakeRid(1));
  tree.Insert(Value("apple"), MakeRid(2));
  tree.Insert(Value("cherry"), MakeRid(3));
  auto rids = tree.RangeScan(
      KeyRange{Value("apple"), true, Value("banana"), true});
  EXPECT_EQ(rids.size(), 2u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(BPlusTreeTest, ScanStatsReportTouches) {
  BPlusTree tree(8);
  for (int64_t i = 0; i < 2000; i++) tree.Insert(Value(i), MakeRid(i));
  IndexScanStats stats;
  auto rids = tree.RangeScan(
      KeyRange{Value(int64_t{0}), true, Value(int64_t{1999}), true}, &stats);
  EXPECT_EQ(rids.size(), 2000u);
  EXPECT_EQ(stats.leaves_touched, tree.leaf_count());
  EXPECT_EQ(stats.height, tree.height());

  auto one = tree.RangeScan(KeyRange::Exactly(Value(int64_t{7})), &stats);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_LE(stats.leaves_touched, 2u);
}

struct FuzzParam {
  uint64_t seed;
  size_t n;
  size_t fanout;
  size_t key_space;
};

class BPlusTreeFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(BPlusTreeFuzz, MatchesMultimapReference) {
  const FuzzParam p = GetParam();
  Rng rng(p.seed);
  BPlusTree tree(p.fanout);
  std::multimap<int64_t, uint64_t> reference;
  for (size_t i = 0; i < p.n; i++) {
    int64_t key = rng.NextInt(0, static_cast<int64_t>(p.key_space) - 1);
    tree.Insert(Value(key), MakeRid(i));
    reference.emplace(key, i);
  }
  ASSERT_TRUE(tree.CheckInvariants());
  ASSERT_EQ(tree.size(), reference.size());

  for (int trial = 0; trial < 40; trial++) {
    int64_t lo = rng.NextInt(0, static_cast<int64_t>(p.key_space) - 1);
    int64_t hi = rng.NextInt(lo, static_cast<int64_t>(p.key_space) - 1);
    bool lo_inc = rng.NextBool(0.5), hi_inc = rng.NextBool(0.5);
    auto rids = tree.RangeScan(KeyRange{Value(lo), lo_inc, Value(hi), hi_inc});
    size_t expected = 0;
    for (auto it = reference.begin(); it != reference.end(); ++it) {
      if ((it->first > lo || (it->first == lo && lo_inc)) &&
          (it->first < hi || (it->first == hi && hi_inc))) {
        expected++;
      }
    }
    ASSERT_EQ(rids.size(), expected)
        << "range [" << lo << "," << hi << "] seed " << p.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BPlusTreeFuzz,
    ::testing::Values(FuzzParam{1, 500, 4, 50},     // tiny fanout, many dups
                      FuzzParam{2, 5000, 8, 10000},  // sparse keys
                      FuzzParam{3, 5000, 64, 100},   // heavy duplication
                      FuzzParam{4, 20000, 64, 1000000},
                      FuzzParam{5, 1000, 4, 3}));    // extreme duplication

}  // namespace
}  // namespace sqp
