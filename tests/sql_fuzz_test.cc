// SQL robustness: the frontend must never crash — every input either
// parses or returns a Status. Plus ToSql round-trip properties.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "trace/trace.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::Sel;

class SqlFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlFuzz, RandomTokenSoupNeverCrashes) {
  Rng rng(GetParam());
  const char* words[] = {"SELECT", "FROM",  "WHERE", "AND",   "GROUP",
                         "BY",     "ORDER", "LIMIT", "COUNT", "SUM",
                         "r",      "s",     "r_a",   "s_c",   "r_id",
                         "*",      ",",     ".",     "(",     ")",
                         "=",      "<",     ">=",    "<>",    "42",
                         "3.14",   "'x'",   "nope",  "-7"};
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(20, 20));
  for (int iter = 0; iter < 400; iter++) {
    std::string sql;
    size_t len = 1 + rng.NextRange(14);
    for (size_t i = 0; i < len; i++) {
      sql += words[rng.NextRange(sizeof(words) / sizeof(words[0]))];
      sql += " ";
    }
    // Must not crash; outcome may be either.
    auto ast = ParseSelect(sql);
    if (ast.ok()) {
      (void)BindFullSelect(*ast, db->catalog());
    }
  }
}

TEST_P(SqlFuzz, RandomBytesNeverCrashLexer) {
  Rng rng(GetParam() + 100);
  for (int iter = 0; iter < 400; iter++) {
    std::string input;
    size_t len = rng.NextRange(64);
    for (size_t i = 0; i < len; i++) {
      input += static_cast<char>(32 + rng.NextRange(95));
    }
    (void)Tokenize(input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzz, ::testing::Values(1, 2, 3, 4));

TEST(SqlRoundTrip, GraphToSqlAndBack) {
  // For integer/string constants, graph -> ToSql -> parse+bind must
  // reproduce the identical graph. (Doubles render with fixed precision
  // and are excluded.)
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(20, 20));
  Rng rng(9);
  for (int iter = 0; iter < 60; iter++) {
    QueryGraph graph;
    if (rng.NextBool(0.7)) graph.AddJoin(testutil::RsJoin());
    if (rng.NextBool(0.8)) {
      graph.AddSelection(Sel("r", "r_a",
                             rng.NextBool(0.5) ? CompareOp::kLt
                                               : CompareOp::kGe,
                             Value(rng.NextInt(0, 99))));
    }
    if (rng.NextBool(0.5)) {
      graph.AddSelection(Sel("r", "r_s", CompareOp::kEq,
                             Value(rng.NextBool(0.5) ? "alpha" : "beta")));
    }
    if (rng.NextBool(0.5)) {
      graph.AddSelection(Sel("s", "s_c", CompareOp::kNe,
                             Value(rng.NextInt(0, 49))));
    }
    if (graph.empty()) continue;
    // Ensure the FROM list is complete even for selection-only graphs.
    auto round = ParseAndBind(graph.ToSql(), db->catalog());
    ASSERT_TRUE(round.ok())
        << graph.ToSql() << " -> " << round.status().ToString();
    EXPECT_EQ(round->CanonicalKey(), graph.CanonicalKey()) << graph.ToSql();
  }
}

TEST(SqlRoundTrip, TraceSerializationAgreesWithGraphKeys) {
  // SelectionPred/JoinPred keys survive the trace text format exactly —
  // the property replay determinism depends on.
  Trace trace;
  TraceEvent e;
  e.type = TraceEventType::kAddSelection;
  e.selection = Sel("r", "r_b", CompareOp::kGe, Value(0.12345678901234));
  trace.events.push_back(e);
  e.selection = Sel("r", "r_s", CompareOp::kEq, Value("it's-free text"));
  // (No embedded tabs/quotes in workload strings, but spaces and
  // apostrophes must survive.)
  e.selection.constant = Value("with space");
  trace.events.push_back(e);
  auto back = Trace::Deserialize(trace.Serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->events.size(), 2u);
  EXPECT_EQ(back->events[0].selection.Key(),
            trace.events[0].selection.Key());
  EXPECT_EQ(back->events[1].selection.constant.AsString(), "with space");
}

}  // namespace
}  // namespace sqp
