// End-to-end correctness property on the real workload: for final
// queries drawn from the user model, every execution strategy — base
// plan, forced speculative rewriting, cost-based with pre-materialized
// views — returns exactly the same row count. This is the invariant the
// entire speculation benefit rests on: rewriting must never change
// answers.
#include <gtest/gtest.h>

#include <set>

#include "harness/experiment.h"
#include "speculation/manipulation_space.h"

namespace sqp {
namespace {

class TpchEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TpchEquivalence, AllStrategiesAgreeOnResults) {
  ExperimentConfig cfg;
  cfg.scale = tpch::Scale::kSmall;
  cfg.num_users = 1;
  cfg.trace_seed = GetParam();
  auto db = BuildDatabase(cfg);
  ASSERT_TRUE(db.ok());
  std::vector<Trace> traces = BuildTraces(cfg);
  auto finals = traces[0].FinalQueries();
  ASSERT_GT(finals.size(), 10u);

  // Keep runtime modest: a sample of distinct final queries.
  std::set<std::string> seen;
  size_t tested = 0;
  for (const QueryGraph& q : finals) {
    if (tested >= 8) break;
    if (!seen.insert(q.CanonicalKey()).second) continue;
    tested++;

    ExecuteOptions base_opts;
    base_opts.view_mode = ViewMode::kNone;
    auto base = db->get()->Execute(q, base_opts);
    ASSERT_TRUE(base.ok()) << q.ToSql();

    // Materialize every manipulation the Speculator would enumerate for
    // this query, then force-rewrite.
    ManipulationSpaceOptions space;
    auto manipulations = EnumerateManipulations(q, db->get()->views(),
                                                db->get()->catalog(), space);
    std::vector<std::string> created;
    for (size_t m = 0; m < manipulations.size(); m++) {
      std::string name = "eq_mv_" + std::to_string(m);
      auto mat = db->get()->Materialize(manipulations[m].target_query, name);
      ASSERT_TRUE(mat.ok()) << manipulations[m].Describe();
      created.push_back(name);
    }

    ExecuteOptions forced_opts;
    forced_opts.view_mode = ViewMode::kForced;
    auto forced = db->get()->Execute(q, forced_opts);
    ASSERT_TRUE(forced.ok());
    EXPECT_EQ(forced->row_count, base->row_count)
        << q.ToSql() << "\n" << forced->plan_explain;

    ExecuteOptions cost_opts;
    cost_opts.view_mode = ViewMode::kCostBased;
    auto cost_based = db->get()->Execute(q, cost_opts);
    ASSERT_TRUE(cost_based.ok());
    EXPECT_EQ(cost_based->row_count, base->row_count) << q.ToSql();

    for (const auto& name : created) {
      ASSERT_TRUE(db->get()->DropTable(name).ok());
    }
  }
  EXPECT_GE(tested, 5u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TpchEquivalence, ::testing::Values(31, 77));

}  // namespace
}  // namespace sqp
