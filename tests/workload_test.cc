// TPC-H subset workload: schema wiring, generator skew, FK integrity,
// scale factors, quantile inversion.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "workload/datagen.h"
#include "workload/tpch.h"

namespace sqp {
namespace tpch {
namespace {

TEST(TpchSchemaTest, SixTablesWithExpectedColumns) {
  ASSERT_EQ(TableNames().size(), 6u);
  for (const auto& table : TableNames()) {
    Schema schema = SchemaFor(table);
    EXPECT_GT(schema.size(), 2u) << table;
  }
  EXPECT_TRUE(SchemaFor("lineitem").HasColumn("l_orderkey"));
  EXPECT_TRUE(SchemaFor("orders").HasColumn("o_custkey"));
  EXPECT_TRUE(SchemaFor("part").HasColumn("p_mfgr"));
}

TEST(TpchSchemaTest, ColumnNamesGloballyUnique) {
  std::set<std::string> names;
  for (const auto& table : TableNames()) {
    Schema schema = SchemaFor(table);
    for (const auto& col : schema.columns()) {
      EXPECT_TRUE(names.insert(col.name).second) << col.name;
    }
  }
}

TEST(TpchSchemaTest, JoinTemplatesReferenceRealColumns) {
  for (const auto& tmpl : FkJoinTemplates()) {
    EXPECT_FALSE(tmpl.edges.empty());
    for (const auto& edge : tmpl.edges) {
      EXPECT_TRUE(SchemaFor(edge.left_table).HasColumn(edge.left_column))
          << tmpl.name;
      EXPECT_TRUE(SchemaFor(edge.right_table).HasColumn(edge.right_column))
          << tmpl.name;
    }
  }
  // The composite lineitem-partsupp template has two edges.
  bool found_composite = false;
  for (const auto& tmpl : FkJoinTemplates()) {
    if (tmpl.edges.size() == 2) found_composite = true;
  }
  EXPECT_TRUE(found_composite);
}

TEST(TpchSchemaTest, SelectionColumnsResolve) {
  for (const auto& col : SelectionColumns()) {
    Schema schema = SchemaFor(col.table);
    auto idx = schema.ColumnIndex(col.column);
    ASSERT_TRUE(idx.has_value()) << col.column;
    EXPECT_EQ(schema.column(*idx).type, col.type) << col.column;
    if (col.type == TypeId::kString) {
      EXPECT_FALSE(col.string_values.empty());
    } else {
      EXPECT_LT(col.lo, col.hi);
    }
  }
}

TEST(TpchSchemaTest, ScalesGrowProportionally) {
  TableSizes s = SizesForScale(Scale::kSmall);
  TableSizes m = SizesForScale(Scale::kMedium);
  TableSizes l = SizesForScale(Scale::kLarge);
  EXPECT_EQ(m.lineitem, 5 * s.lineitem);
  EXPECT_EQ(l.lineitem, 10 * s.lineitem);
  EXPECT_EQ(s.partsupp, 4 * s.part);
  EXPECT_EQ(s.lineitem, 4 * s.orders);
}

TEST(TpchQuantileTest, MonotoneAndBoundedInversion) {
  for (const auto& col : SelectionColumns()) {
    if (col.type == TypeId::kString) continue;
    double prev = col.lo - 1;
    for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
      double q = ColumnQuantile(col, p);
      EXPECT_GE(q, col.lo) << col.column;
      EXPECT_LE(q, col.hi) << col.column;
      EXPECT_GE(q, prev) << col.column << " p=" << p;
      prev = q;
    }
  }
}

TEST(TpchQuantileTest, ZipfQuantilesFrontLoaded) {
  // Under skew, half the mass sits in a small prefix of the domain.
  const SelectionColumn* quantity = nullptr;
  for (const auto& col : SelectionColumns()) {
    if (col.column == "l_quantity") quantity = &col;
  }
  ASSERT_NE(quantity, nullptr);
  double median = ColumnQuantile(*quantity, 0.5);
  double mid = (quantity->lo + quantity->hi) / 2;
  EXPECT_LT(median, mid);
}

class TpchDataTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatabaseOptions options;
    options.buffer_pool_pages = 2048;
    db_ = new Database(options);
    LoadOptions load;
    load.scale = Scale::kSmall;
    load.seed = 99;
    ASSERT_TRUE(LoadTpch(db_, load).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static std::vector<Tuple> AllRows(const std::string& table) {
    std::vector<Tuple> rows;
    auto iter = db_->catalog().GetTable(table)->heap->Scan();
    for (;;) {
      auto row = iter.Next();
      EXPECT_TRUE(row.ok());
      if (!row->has_value()) break;
      rows.push_back(**row);
    }
    return rows;
  }

  static Database* db_;
};

Database* TpchDataTest::db_ = nullptr;

TEST_F(TpchDataTest, RowCountsMatchScale) {
  TableSizes sizes = SizesForScale(Scale::kSmall);
  EXPECT_EQ(db_->catalog().GetTable("part")->stats.row_count(), sizes.part);
  EXPECT_EQ(db_->catalog().GetTable("lineitem")->stats.row_count(),
            sizes.lineitem);
  EXPECT_EQ(db_->catalog().GetTable("orders")->stats.row_count(),
            sizes.orders);
}

TEST_F(TpchDataTest, ForeignKeysResolve) {
  TableSizes sizes = SizesForScale(Scale::kSmall);
  auto orders = AllRows("orders");
  for (const auto& row : orders) {
    int64_t cust = row[1].AsInt64();
    ASSERT_GE(cust, 1);
    ASSERT_LE(cust, static_cast<int64_t>(sizes.customer));
  }
  // Every lineitem (partkey, suppkey) pair exists in partsupp.
  std::set<std::pair<int64_t, int64_t>> ps_pairs;
  for (const auto& row : AllRows("partsupp")) {
    ps_pairs.insert({row[0].AsInt64(), row[1].AsInt64()});
  }
  size_t checked = 0;
  for (const auto& row : AllRows("lineitem")) {
    if (checked++ > 5000) break;
    ASSERT_TRUE(ps_pairs.count({row[1].AsInt64(), row[2].AsInt64()}))
        << row[1].AsInt64() << "," << row[2].AsInt64();
  }
}

TEST_F(TpchDataTest, SkewedFieldsAreSkewed) {
  std::map<int64_t, size_t> counts;
  for (const auto& row : AllRows("lineitem")) {
    counts[row[3].AsInt64()]++;  // l_quantity
  }
  // The most popular value must dominate the median-popular one by far.
  std::vector<size_t> freq;
  for (auto& [v, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());
  ASSERT_GT(freq.size(), 10u);
  EXPECT_GT(freq[0], 4 * freq[freq.size() / 2]);
}

TEST_F(TpchDataTest, SkewedIntCoversDomain) {
  int64_t max_qty = 0;
  for (const auto& row : AllRows("partsupp")) {
    max_qty = std::max(max_qty, row[2].AsInt64());  // ps_availqty
  }
  EXPECT_GT(max_qty, 5000);  // domain [1, 10000] actually covered
}

TEST_F(TpchDataTest, IndexesAndHistogramsPrepared) {
  for (const auto& [table, column] : IndexedColumns()) {
    EXPECT_TRUE(db_->catalog().HasIndex(table, column))
        << table << "." << column;
    EXPECT_NE(db_->catalog().GetHistogram(table, column), nullptr)
        << table << "." << column;
  }
}

TEST_F(TpchDataTest, QuantileInversionMatchesData) {
  // The analytic quantile must approximate the empirical one.
  const SelectionColumn* date = nullptr;
  for (const auto& col : SelectionColumns()) {
    if (col.column == "o_orderdate") date = &col;
  }
  ASSERT_NE(date, nullptr);
  std::vector<int64_t> values;
  for (const auto& row : AllRows("orders")) {
    values.push_back(row[3].AsInt64());
  }
  std::sort(values.begin(), values.end());
  for (double p : {0.25, 0.5, 0.75}) {
    double analytic = ColumnQuantile(*date, p);
    double empirical =
        static_cast<double>(values[static_cast<size_t>(p * values.size())]);
    double span = date->hi - date->lo;
    EXPECT_NEAR(analytic, empirical, span * 0.08) << "p=" << p;
  }
}

TEST_F(TpchDataTest, DeterministicInSeed) {
  DatabaseOptions options;
  options.buffer_pool_pages = 2048;
  Database other(options);
  LoadOptions load;
  load.scale = Scale::kSmall;
  load.seed = 99;
  ASSERT_TRUE(LoadTpch(&other, load).ok());
  auto a = db_->catalog().GetTable("part")->stats;
  auto b = other.catalog().GetTable("part")->stats;
  EXPECT_EQ(a.row_count(), b.row_count());
  EXPECT_EQ(a.column(1).max->AsInt64(), b.column(1).max->AsInt64());
  EXPECT_EQ(a.column(1).distinct_count, b.column(1).distinct_count);
}

TEST_F(TpchDataTest, DatasetPagesReported) {
  EXPECT_GT(DatasetPages(*db_), 300u);
}

}  // namespace
}  // namespace tpch
}  // namespace sqp
