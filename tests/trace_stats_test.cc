// User-model calibration: the generated traces must reproduce the
// paper's §5 behaviour profile within tolerances (DESIGN.md §2 justifies
// the generator as the stand-in for the 15 human subjects).
#include <gtest/gtest.h>

#include "trace/trace_generator.h"

namespace sqp {
namespace {

class TraceStatsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TraceGeneratorOptions options;
    options.num_users = 15;
    options.seed = 20030107;  // CIDR 2003
    stats_ = new TraceStats(ComputeTraceStats(GenerateTraces(options)));
  }
  static void TearDownTestSuite() {
    delete stats_;
    stats_ = nullptr;
  }
  static TraceStats* stats_;
};

TraceStats* TraceStatsTest::stats_ = nullptr;

TEST_F(TraceStatsTest, QueriesPerTraceNear42) {
  EXPECT_NEAR(stats_->avg_queries_per_trace, 42.0, 7.0);
}

TEST_F(TraceStatsTest, SelectionsPerQueryBetweenOneAndTwo) {
  EXPECT_GE(stats_->avg_selections_per_query, 1.0);
  EXPECT_LE(stats_->avg_selections_per_query, 2.0);
}

TEST_F(TraceStatsTest, RelationsPerQueryNearFour) {
  EXPECT_NEAR(stats_->avg_relations_per_query, 4.0, 0.8);
}

TEST_F(TraceStatsTest, SelectionLifetimeNearThree) {
  EXPECT_NEAR(stats_->avg_selection_lifetime, 3.0, 0.8);
}

TEST_F(TraceStatsTest, JoinLifetimeNearTen) {
  EXPECT_NEAR(stats_->avg_join_lifetime, 10.0, 3.0);
}

TEST_F(TraceStatsTest, DurationDistributionMatchesPaper) {
  // Paper: min 1, avg 28, max 680, percentiles 4 / 11 / 29.
  EXPECT_GE(stats_->min_duration, 0.99);
  EXPECT_NEAR(stats_->avg_duration, 28.0, 8.0);
  EXPECT_LE(stats_->max_duration, 680.01);
  EXPECT_GT(stats_->max_duration, 100.0);
  EXPECT_NEAR(stats_->p25_duration, 4.0, 2.0);
  EXPECT_NEAR(stats_->p50_duration, 11.0, 3.5);
  EXPECT_NEAR(stats_->p75_duration, 29.0, 8.0);
}

TEST(TraceGeneratorTest, DeterministicInSeed) {
  TraceGeneratorOptions options;
  options.num_users = 2;
  options.seed = 5;
  auto a = GenerateTraces(options);
  auto b = GenerateTraces(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i].Serialize(), b[i].Serialize());
  }
  options.seed = 6;
  auto c = GenerateTraces(options);
  EXPECT_NE(a[0].Serialize(), c[0].Serialize());
}

TEST(TraceGeneratorTest, FinalQueriesAreConnectedAndNonEmpty) {
  TraceGeneratorOptions options;
  options.num_users = 4;
  options.seed = 11;
  for (const auto& trace : GenerateTraces(options)) {
    for (const auto& q : trace.FinalQueries()) {
      EXPECT_GT(q.num_atomic_parts(), 0u);
      EXPECT_TRUE(q.IsConnected()) << q.ToSql();
      EXPECT_LE(q.relations().size(), 6u);
    }
  }
}

TEST(TraceGeneratorTest, EventsHaveMonotoneTimestamps) {
  UserModelParams params;
  Trace trace = GenerateTrace(params, 0, 3);
  double prev = -1;
  for (const auto& e : trace.events) {
    EXPECT_GE(e.timestamp, prev - 1e-9);
    prev = e.timestamp;
  }
}

TEST(TraceGeneratorTest, ChurnProducesTransientParts) {
  // Across enough traces, some parts must appear mid-formulation and
  // vanish before GO (the events that drive manipulation cancellation).
  UserModelParams params;
  params.p_churn = 1.0;  // force it
  Trace trace = GenerateTrace(params, 0, 17);
  size_t removals_before_go = 0;
  QueryGraph partial;
  std::vector<std::string> added_this_formulation;
  for (const auto& e : trace.events) {
    if (e.type == TraceEventType::kGo) {
      added_this_formulation.clear();
    } else if (e.type == TraceEventType::kAddSelection) {
      added_this_formulation.push_back(e.selection.Key());
    } else if (e.type == TraceEventType::kRemoveSelection) {
      for (const auto& key : added_this_formulation) {
        if (key == e.selection.Key()) removals_before_go++;
      }
    }
  }
  EXPECT_GT(removals_before_go, 10u);
}

}  // namespace
}  // namespace sqp
