// Query graphs: edge-set semantics, containment, union/intersection,
// connectivity — the algebra Theorem 3.1 quantifies over.
#include "optimizer/query_graph.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::Sel;

TEST(QueryGraphTest, AddSelectionAddsRelation) {
  QueryGraph g;
  g.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  EXPECT_TRUE(g.HasRelation("r"));
  EXPECT_EQ(g.selections().size(), 1u);
  EXPECT_EQ(g.num_atomic_parts(), 1u);
}

TEST(QueryGraphTest, AddJoinAddsBothRelations) {
  QueryGraph g;
  g.AddJoin(Join("r", "r_id", "s", "s_rid"));
  EXPECT_TRUE(g.HasRelation("r"));
  EXPECT_TRUE(g.HasRelation("s"));
  EXPECT_EQ(g.joins().size(), 1u);
}

TEST(QueryGraphTest, JoinCanonicalizationMakesOrderIrrelevant) {
  JoinPred a = Join("r", "r_id", "s", "s_rid");
  JoinPred b = Join("s", "s_rid", "r", "r_id");
  EXPECT_EQ(a.Key(), b.Key());
  QueryGraph g;
  g.AddJoin(a);
  g.AddJoin(b);
  EXPECT_EQ(g.joins().size(), 1u);  // duplicate suppressed
}

TEST(QueryGraphTest, DuplicateSelectionSuppressed) {
  QueryGraph g;
  auto s = Sel("r", "r_a", CompareOp::kEq, Value(int64_t{1}));
  g.AddSelection(s);
  g.AddSelection(s);
  EXPECT_EQ(g.selections().size(), 1u);
  // Different constant = different atomic part.
  g.AddSelection(Sel("r", "r_a", CompareOp::kEq, Value(int64_t{2})));
  EXPECT_EQ(g.selections().size(), 2u);
}

TEST(QueryGraphTest, RemoveSelectionByKey) {
  QueryGraph g;
  auto s = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  g.AddSelection(s);
  EXPECT_TRUE(g.RemoveSelection(s.Key()));
  EXPECT_FALSE(g.RemoveSelection(s.Key()));
  EXPECT_EQ(g.selections().size(), 0u);
  // The relation vertex stays until explicitly removed.
  EXPECT_TRUE(g.HasRelation("r"));
  EXPECT_TRUE(g.RemoveRelation("r"));
  EXPECT_FALSE(g.HasRelation("r"));
}

TEST(QueryGraphTest, RemoveRelationDropsIncidentEdges) {
  QueryGraph g;
  g.AddJoin(Join("r", "r_id", "s", "s_rid"));
  g.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  g.AddSelection(Sel("s", "s_c", CompareOp::kGt, Value(int64_t{5})));
  g.RemoveRelation("r");
  EXPECT_EQ(g.joins().size(), 0u);
  EXPECT_EQ(g.selections().size(), 1u);
  EXPECT_EQ(g.selections()[0].table, "s");
}

TEST(QueryGraphTest, ContainmentIsSubgraph) {
  QueryGraph big;
  big.AddJoin(Join("r", "r_id", "s", "s_rid"));
  big.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));

  QueryGraph sub;
  sub.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  EXPECT_TRUE(big.ContainsSubgraph(sub));
  EXPECT_FALSE(sub.ContainsSubgraph(big));
  EXPECT_TRUE(big.ContainsSubgraph(big));
  EXPECT_TRUE(big.ContainsSubgraph(QueryGraph()));  // empty ⊆ anything

  QueryGraph other;
  other.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{6})));
  EXPECT_FALSE(big.ContainsSubgraph(other));  // different constant
}

TEST(QueryGraphTest, UnionAndIntersection) {
  QueryGraph a, b;
  a.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  a.AddJoin(Join("r", "r_id", "s", "s_rid"));
  b.AddJoin(Join("r", "r_id", "s", "s_rid"));
  b.AddSelection(Sel("s", "s_c", CompareOp::kGt, Value(int64_t{1})));

  QueryGraph u = a.Union(b);
  EXPECT_EQ(u.selections().size(), 2u);
  EXPECT_EQ(u.joins().size(), 1u);

  QueryGraph i = a.Intersect(b);
  EXPECT_EQ(i.selections().size(), 0u);
  EXPECT_EQ(i.joins().size(), 1u);

  EXPECT_TRUE(u.ContainsSubgraph(a));
  EXPECT_TRUE(u.ContainsSubgraph(b));
  EXPECT_TRUE(a.ContainsSubgraph(i));
  EXPECT_TRUE(b.ContainsSubgraph(i));
}

TEST(QueryGraphTest, DisjointWith) {
  QueryGraph a, b;
  a.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  b.AddSelection(Sel("s", "s_c", CompareOp::kGt, Value(int64_t{1})));
  EXPECT_TRUE(a.DisjointWith(b));
  b.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  EXPECT_FALSE(a.DisjointWith(b));
}

TEST(QueryGraphTest, Connectivity) {
  QueryGraph g;
  g.AddJoin(Join("a", "x", "b", "x"));
  g.AddJoin(Join("b", "y", "c", "y"));
  EXPECT_TRUE(g.IsConnected());
  g.AddRelation("d");  // isolated vertex
  EXPECT_FALSE(g.IsConnected());
  g.AddJoin(Join("c", "z", "d", "z"));
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(QueryGraph().IsConnected());
}

TEST(QueryGraphTest, CanonicalKeyOrderInsensitive) {
  QueryGraph a, b;
  a.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  a.AddJoin(Join("r", "r_id", "s", "s_rid"));
  b.AddJoin(Join("s", "s_rid", "r", "r_id"));
  b.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
  EXPECT_TRUE(a == b);
}

TEST(QueryGraphTest, SelectionsOnAndJoinsOn) {
  QueryGraph g;
  g.AddJoin(Join("r", "r_id", "s", "s_rid"));
  g.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  g.AddSelection(Sel("r", "r_b", CompareOp::kGt, Value(0.5)));
  g.AddSelection(Sel("s", "s_c", CompareOp::kEq, Value(int64_t{3})));
  EXPECT_EQ(g.SelectionsOn("r").size(), 2u);
  EXPECT_EQ(g.SelectionsOn("s").size(), 1u);
  EXPECT_EQ(g.JoinsOn("r").size(), 1u);
  EXPECT_EQ(g.JoinsOn("missing").size(), 0u);
}

TEST(QueryGraphTest, ToSqlRendering) {
  QueryGraph g;
  g.AddJoin(Join("r", "r_id", "s", "s_rid"));
  g.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  g.SetProjections({"r_a"});
  std::string sql = g.ToSql();
  EXPECT_NE(sql.find("SELECT r_a"), std::string::npos);
  EXPECT_NE(sql.find("FROM r, s"), std::string::npos);
  EXPECT_NE(sql.find("r.r_id = s.s_rid"), std::string::npos);
  EXPECT_NE(sql.find("r.r_a < 5"), std::string::npos);
}

TEST(QueryGraphTest, JoinPredHelpers) {
  JoinPred j = Join("r", "r_id", "s", "s_rid");
  EXPECT_TRUE(j.Touches("r"));
  EXPECT_TRUE(j.Touches("s"));
  EXPECT_FALSE(j.Touches("t"));
  EXPECT_EQ(j.Other("r"), "s");
  EXPECT_EQ(j.Other("s"), "r");
}

}  // namespace
}  // namespace sqp
