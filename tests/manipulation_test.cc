// Manipulations and the manipulation-space enumeration (§3.2 / §3.5).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "speculation/manipulation_space.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::Sel;

TEST(ManipulationTest, KeysAndDescriptions) {
  Manipulation null = Manipulation::Null();
  EXPECT_EQ(null.type, ManipulationType::kNull);
  EXPECT_EQ(null.Key(), "null");
  EXPECT_FALSE(null.is_materialization());

  Manipulation mat;
  mat.type = ManipulationType::kRewriteQuery;
  mat.target_query.AddSelection(
      Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  EXPECT_TRUE(mat.is_materialization());
  EXPECT_NE(mat.Describe().find("MATERIALIZE"), std::string::npos);

  Manipulation hist;
  hist.type = ManipulationType::kHistogramCreation;
  hist.table = "r";
  hist.column = "r_a";
  EXPECT_EQ(hist.Key(), "histogram:r.r_a");
  EXPECT_FALSE(hist.is_materialization());
}

class ManipulationSpaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reset(testutil::MakeTwoTableDb(100, 100));
    partial_.AddJoin(Join("r", "r_id", "s", "s_rid"));
    partial_.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
    partial_.AddSelection(Sel("s", "s_c", CompareOp::kGt, Value(int64_t{9})));
  }
  std::unique_ptr<Database> db_;
  QueryGraph partial_;
};

TEST_F(ManipulationSpaceTest, DefaultEnumeratesSelectionsAndJoins) {
  ManipulationSpaceOptions options;
  auto ms = EnumerateManipulations(partial_, db_->views(), db_->catalog(),
                                   options);
  // 2 selection edges + 1 join pair = 3 materializations.
  ASSERT_EQ(ms.size(), 3u);
  for (const auto& m : ms) {
    EXPECT_EQ(m.type, ManipulationType::kRewriteQuery);
  }
  // The join manipulation carries both attached selections (§3.5).
  bool found_join = false;
  for (const auto& m : ms) {
    if (!m.target_query.joins().empty()) {
      found_join = true;
      EXPECT_EQ(m.target_query.selections().size(), 2u);
    } else {
      EXPECT_EQ(m.target_query.selections().size(), 1u);
      EXPECT_EQ(m.target_query.relations().size(), 1u);
    }
  }
  EXPECT_TRUE(found_join);
}

TEST_F(ManipulationSpaceTest, ForceRewriteToggle) {
  ManipulationSpaceOptions options;
  options.force_rewrite = false;
  auto ms = EnumerateManipulations(partial_, db_->views(), db_->catalog(),
                                   options);
  for (const auto& m : ms) {
    EXPECT_EQ(m.type, ManipulationType::kMaterializeQuery);
  }
}

TEST_F(ManipulationSpaceTest, SelectionOnlyPolicy) {
  ManipulationSpaceOptions options;
  options.join_materializations = false;
  auto ms = EnumerateManipulations(partial_, db_->views(), db_->catalog(),
                                   options);
  ASSERT_EQ(ms.size(), 2u);
  for (const auto& m : ms) EXPECT_TRUE(m.target_query.joins().empty());
}

TEST_F(ManipulationSpaceTest, ExistingViewSkipped) {
  QueryGraph sel;
  sel.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  ASSERT_TRUE(db_->Materialize(sel, "v").ok());
  ManipulationSpaceOptions options;
  auto ms = EnumerateManipulations(partial_, db_->views(), db_->catalog(),
                                   options);
  for (const auto& m : ms) {
    EXPECT_FALSE(m.target_query == sel) << "existing view re-enumerated";
  }
}

TEST_F(ManipulationSpaceTest, HistogramAndIndexPolicies) {
  ManipulationSpaceOptions options;
  options.selection_materializations = false;
  options.join_materializations = false;
  options.histogram_creations = true;
  options.index_creations = true;
  auto ms = EnumerateManipulations(partial_, db_->views(), db_->catalog(),
                                   options);
  // Two selection columns, each yielding one histogram + one index.
  std::set<std::string> keys;
  for (const auto& m : ms) keys.insert(m.Key());
  EXPECT_EQ(keys.size(), 4u);
  EXPECT_TRUE(keys.count("histogram:r.r_a"));
  EXPECT_TRUE(keys.count("index:s.s_c"));

  // Existing structures are skipped.
  ASSERT_TRUE(db_->CreateIndex("r", "r_a").ok());
  ASSERT_TRUE(db_->CreateHistogram("s", "s_c").ok());
  ms = EnumerateManipulations(partial_, db_->views(), db_->catalog(),
                              options);
  keys.clear();
  for (const auto& m : ms) keys.insert(m.Key());
  EXPECT_EQ(keys.size(), 2u);
  EXPECT_FALSE(keys.count("index:r.r_a"));
  EXPECT_FALSE(keys.count("histogram:s.s_c"));
}

TEST_F(ManipulationSpaceTest, CompositeJoinBecomesOneManipulation) {
  QueryGraph partial;
  partial.AddJoin(Join("lineitem", "l_partkey", "partsupp", "ps_partkey"));
  partial.AddJoin(Join("lineitem", "l_suppkey", "partsupp", "ps_suppkey"));
  ManipulationSpaceOptions options;
  options.selection_materializations = false;
  auto ms = EnumerateManipulations(partial, db_->views(), db_->catalog(),
                                   options);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].target_query.joins().size(), 2u);
}

TEST_F(ManipulationSpaceTest, EmptyPartialYieldsNothing) {
  auto ms = EnumerateManipulations(QueryGraph(), db_->views(),
                                   db_->catalog(), ManipulationSpaceOptions{});
  EXPECT_TRUE(ms.empty());
}

}  // namespace
}  // namespace sqp
