// Experiment metrics: the paper's improvement formula and bucketing.
#include "harness/metrics.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

QueryRecord Rec(double seconds) {
  QueryRecord r;
  r.seconds = seconds;
  return r;
}

TEST(MetricsTest, ImprovementFormula) {
  std::vector<QueryRecord> normal = {Rec(10), Rec(10)};
  std::vector<QueryRecord> spec = {Rec(5), Rec(10)};
  // 1 - 15/20 = 0.25.
  EXPECT_NEAR(Improvement(normal, spec), 0.25, 1e-12);
  // Regression yields a negative value.
  std::vector<QueryRecord> slower = {Rec(15), Rec(15)};
  EXPECT_LT(Improvement(normal, slower), 0);
  // Identical runs: zero.
  EXPECT_DOUBLE_EQ(Improvement(normal, normal), 0.0);
}

TEST(MetricsTest, ImprovementEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Improvement({}, {}), 0.0);
}

TEST(MetricsTest, BucketsPartitionByNormalTime) {
  std::vector<QueryRecord> normal, spec;
  // Bucket [0,1): 6 queries at 0.5s improved to 0.25.
  for (int i = 0; i < 6; i++) {
    normal.push_back(Rec(0.5));
    spec.push_back(Rec(0.25));
  }
  // Bucket [1,2): 5 queries at 1.5s, no change.
  for (int i = 0; i < 5; i++) {
    normal.push_back(Rec(1.5));
    spec.push_back(Rec(1.5));
  }
  // Sparse bucket [2,3): only 2 queries -> suppressed.
  for (int i = 0; i < 2; i++) {
    normal.push_back(Rec(2.5));
    spec.push_back(Rec(0.1));
  }
  BucketOptions opts;
  opts.lo = 0;
  opts.hi = 3;
  opts.width = 1;
  opts.min_count = 5;
  auto buckets = BucketImprovements(normal, spec, opts);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_NEAR(buckets[0].improvement, 0.5, 1e-12);
  EXPECT_EQ(buckets[0].count, 6u);
  EXPECT_NEAR(buckets[1].improvement, 0.0, 1e-12);
}

TEST(MetricsTest, ExtremesPerBucket) {
  std::vector<QueryRecord> normal, spec;
  for (int i = 0; i < 4; i++) {
    normal.push_back(Rec(1.0));
    spec.push_back(Rec(0.5));
  }
  normal.push_back(Rec(1.0));
  spec.push_back(Rec(2.0));  // a penalty
  BucketOptions opts;
  opts.lo = 0;
  opts.hi = 2;
  opts.width = 2;
  opts.min_count = 1;
  auto buckets = BucketImprovements(normal, spec, opts);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_NEAR(buckets[0].max_improvement, 0.5, 1e-12);
  EXPECT_NEAR(buckets[0].min_improvement, -1.0, 1e-12);
}

TEST(MetricsTest, OutOfRangeQueriesDropped) {
  std::vector<QueryRecord> normal = {Rec(0.1), Rec(5.0), Rec(100.0)};
  std::vector<QueryRecord> spec = {Rec(0.1), Rec(2.5), Rec(1.0)};
  BucketOptions opts;
  opts.lo = 1;
  opts.hi = 10;
  opts.width = 9;
  opts.min_count = 1;
  auto buckets = BucketImprovements(normal, spec, opts);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].count, 1u);
}

TEST(MetricsTest, AutoBucketsCoverBulk) {
  std::vector<QueryRecord> normal;
  for (int i = 0; i < 200; i++) normal.push_back(Rec(1.0 + (i % 50) * 0.1));
  BucketOptions opts = AutoBuckets(normal, 10, 5);
  EXPECT_LT(opts.lo, 2.0);
  EXPECT_GT(opts.hi, 4.0);
  EXPECT_GT(opts.width, 0.0);
  size_t covered = 0;
  for (const auto& q : normal) {
    if (q.seconds >= opts.lo && q.seconds < opts.hi) covered++;
  }
  EXPECT_GT(covered, normal.size() * 3 / 5);
}

TEST(MetricsTest, AutoBucketsEmptyInput) {
  BucketOptions opts = AutoBuckets({});
  EXPECT_GT(opts.hi, opts.lo);
}

TEST(MetricsTest, FormatBucketsRendersRows) {
  std::vector<Bucket> buckets(1);
  buckets[0].lo = 0;
  buckets[0].hi = 1;
  buckets[0].count = 7;
  buckets[0].improvement = 0.42;
  buckets[0].max_improvement = 0.9;
  buckets[0].min_improvement = -0.1;
  std::string text = FormatBuckets(buckets, true);
  EXPECT_NE(text.find("42.0"), std::string::npos);
  EXPECT_NE(text.find("90.0"), std::string::npos);
  EXPECT_NE(text.find("-10.0"), std::string::npos);
}

}  // namespace
}  // namespace sqp
