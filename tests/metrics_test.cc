// Experiment metrics: the paper's improvement formula and bucketing.
#include "harness/metrics.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

QueryRecord Rec(double seconds) {
  QueryRecord r;
  r.seconds = seconds;
  return r;
}

TEST(MetricsTest, ImprovementFormula) {
  std::vector<QueryRecord> normal = {Rec(10), Rec(10)};
  std::vector<QueryRecord> spec = {Rec(5), Rec(10)};
  // 1 - 15/20 = 0.25.
  EXPECT_NEAR(Improvement(normal, spec), 0.25, 1e-12);
  // Regression yields a negative value.
  std::vector<QueryRecord> slower = {Rec(15), Rec(15)};
  EXPECT_LT(Improvement(normal, slower), 0);
  // Identical runs: zero.
  EXPECT_DOUBLE_EQ(Improvement(normal, normal), 0.0);
}

TEST(MetricsTest, ImprovementEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Improvement({}, {}), 0.0);
}

TEST(MetricsTest, BucketsPartitionByNormalTime) {
  std::vector<QueryRecord> normal, spec;
  // Bucket [0,1): 6 queries at 0.5s improved to 0.25.
  for (int i = 0; i < 6; i++) {
    normal.push_back(Rec(0.5));
    spec.push_back(Rec(0.25));
  }
  // Bucket [1,2): 5 queries at 1.5s, no change.
  for (int i = 0; i < 5; i++) {
    normal.push_back(Rec(1.5));
    spec.push_back(Rec(1.5));
  }
  // Sparse bucket [2,3): only 2 queries -> suppressed.
  for (int i = 0; i < 2; i++) {
    normal.push_back(Rec(2.5));
    spec.push_back(Rec(0.1));
  }
  BucketOptions opts;
  opts.lo = 0;
  opts.hi = 3;
  opts.width = 1;
  opts.min_count = 5;
  auto buckets = BucketImprovements(normal, spec, opts);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_NEAR(buckets[0].improvement, 0.5, 1e-12);
  EXPECT_EQ(buckets[0].count, 6u);
  EXPECT_NEAR(buckets[1].improvement, 0.0, 1e-12);
}

TEST(MetricsTest, ExtremesPerBucket) {
  std::vector<QueryRecord> normal, spec;
  for (int i = 0; i < 4; i++) {
    normal.push_back(Rec(1.0));
    spec.push_back(Rec(0.5));
  }
  normal.push_back(Rec(1.0));
  spec.push_back(Rec(2.0));  // a penalty
  BucketOptions opts;
  opts.lo = 0;
  opts.hi = 2;
  opts.width = 2;
  opts.min_count = 1;
  auto buckets = BucketImprovements(normal, spec, opts);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_NEAR(buckets[0].max_improvement, 0.5, 1e-12);
  EXPECT_NEAR(buckets[0].min_improvement, -1.0, 1e-12);
}

TEST(MetricsTest, OutOfRangeQueriesDropped) {
  std::vector<QueryRecord> normal = {Rec(0.1), Rec(5.0), Rec(100.0)};
  std::vector<QueryRecord> spec = {Rec(0.1), Rec(2.5), Rec(1.0)};
  BucketOptions opts;
  opts.lo = 1;
  opts.hi = 10;
  opts.width = 9;
  opts.min_count = 1;
  auto buckets = BucketImprovements(normal, spec, opts);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].count, 1u);
}

TEST(MetricsTest, AutoBucketsCoverBulk) {
  std::vector<QueryRecord> normal;
  for (int i = 0; i < 200; i++) normal.push_back(Rec(1.0 + (i % 50) * 0.1));
  BucketOptions opts = AutoBuckets(normal, 10, 5);
  EXPECT_LT(opts.lo, 2.0);
  EXPECT_GT(opts.hi, 4.0);
  EXPECT_GT(opts.width, 0.0);
  size_t covered = 0;
  for (const auto& q : normal) {
    if (q.seconds >= opts.lo && q.seconds < opts.hi) covered++;
  }
  EXPECT_GT(covered, normal.size() * 3 / 5);
}

TEST(MetricsTest, AutoBucketsEmptyInput) {
  BucketOptions opts = AutoBuckets({});
  EXPECT_GT(opts.hi, opts.lo);
}

TEST(MetricsTest, AggregateEngineStatsSumsMigratedCounters) {
  EngineStats a, b;
  a.manipulations_issued = 3;
  a.manipulations_completed = 2;
  a.completed_durations = {1.0, 2.0};
  a.wasted_manipulation_work = 0.5;
  a.views_recovered = 1;
  b.manipulations_issued = 1;
  b.cancelled_at_go = 1;
  b.wasted_manipulation_work = 1.5;
  EngineStats total = AggregateEngineStats({a, b});
  EXPECT_EQ(total.manipulations_issued, 4u);
  EXPECT_EQ(total.manipulations_completed, 2u);
  EXPECT_EQ(total.cancelled_at_go, 1u);
  EXPECT_EQ(total.views_recovered, 1u);
  EXPECT_DOUBLE_EQ(total.wasted_manipulation_work, 2.0);
  EXPECT_EQ(total.completed_durations.size(), 2u);
}

TEST(MetricsTest, ComputeOverlapDerivesRatios) {
  EngineStats stats;
  stats.completed_durations = {3.0, 1.0};  // hidden = 4
  stats.wasted_manipulation_work = 1.0;    // executed = 5
  // Session 100 s, queries 20 s -> think 80 s.
  OverlapStats overlap = ComputeOverlap(stats, 100.0, 20.0);
  EXPECT_DOUBLE_EQ(overlap.hidden_seconds, 4.0);
  EXPECT_DOUBLE_EQ(overlap.wasted_seconds, 1.0);
  EXPECT_DOUBLE_EQ(overlap.executed_seconds, 5.0);
  EXPECT_DOUBLE_EQ(overlap.think_seconds, 80.0);
  EXPECT_DOUBLE_EQ(overlap.overlap_fraction, 0.8);
  EXPECT_DOUBLE_EQ(overlap.wasted_ratio, 0.2);
  EXPECT_DOUBLE_EQ(overlap.think_utilization, 5.0 / 80.0);
}

TEST(MetricsTest, ComputeOverlapZeroWorkIsAllZeroRatios) {
  OverlapStats overlap = ComputeOverlap(EngineStats{}, 10.0, 10.0);
  EXPECT_DOUBLE_EQ(overlap.overlap_fraction, 0.0);
  EXPECT_DOUBLE_EQ(overlap.wasted_ratio, 0.0);
  EXPECT_DOUBLE_EQ(overlap.think_utilization, 0.0);
  EXPECT_DOUBLE_EQ(overlap.think_seconds, 0.0);
}

TEST(MetricsTest, AggregateOverlapRecomputesRatiosFromTotals) {
  OverlapStats a, b;
  a.executed_seconds = 4;
  a.hidden_seconds = 4;
  a.think_seconds = 10;
  b.executed_seconds = 6;
  b.wasted_seconds = 6;
  b.think_seconds = 10;
  OverlapStats total = AggregateOverlap({a, b});
  EXPECT_DOUBLE_EQ(total.executed_seconds, 10.0);
  EXPECT_DOUBLE_EQ(total.overlap_fraction, 0.4);
  EXPECT_DOUBLE_EQ(total.wasted_ratio, 0.6);
  EXPECT_DOUBLE_EQ(total.think_utilization, 0.5);
}

TEST(MetricsTest, FormatOverlapStatsRendersRatios) {
  OverlapStats overlap;
  overlap.executed_seconds = 5;
  overlap.hidden_seconds = 4;
  overlap.wasted_seconds = 1;
  overlap.think_seconds = 80;
  overlap.overlap_fraction = 0.8;
  overlap.wasted_ratio = 0.2;
  overlap.think_utilization = 0.063;
  std::string text = FormatOverlapStats(overlap);
  EXPECT_NE(text.find("overlap_fraction: 0.800"), std::string::npos);
  EXPECT_NE(text.find("wasted_ratio: 0.200"), std::string::npos);
  EXPECT_NE(text.find("think_utilization: 0.063"), std::string::npos);
}

TEST(MetricsTest, FormatBucketsRendersRows) {
  std::vector<Bucket> buckets(1);
  buckets[0].lo = 0;
  buckets[0].hi = 1;
  buckets[0].count = 7;
  buckets[0].improvement = 0.42;
  buckets[0].max_improvement = 0.9;
  buckets[0].min_improvement = -0.1;
  std::string text = FormatBuckets(buckets, true);
  EXPECT_NE(text.find("42.0"), std::string::npos);
  EXPECT_NE(text.find("90.0"), std::string::npos);
  EXPECT_NE(text.find("-10.0"), std::string::npos);
}

}  // namespace
}  // namespace sqp
