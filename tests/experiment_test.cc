// End-to-end integration: the experiment drivers on the real TPC-H
// subset (tiny user counts to keep runtime modest). These tie the whole
// stack together: datagen -> traces -> replays -> metrics.
#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sqp {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig cfg;
  cfg.scale = tpch::Scale::kSmall;
  cfg.num_users = 1;
  cfg.data_seed = 7;
  cfg.trace_seed = 21;
  return cfg;
}

TEST(ExperimentTest, SingleUserEndToEnd) {
  auto result = RunSingleUserExperiment(TinyConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->normal.size(), 20u);
  ASSERT_EQ(result->normal.size(), result->speculative.size());

  // Matched queries: same graph in both replays.
  for (size_t i = 0; i < result->normal.size(); i++) {
    ASSERT_EQ(result->normal[i].query.CanonicalKey(),
              result->speculative[i].query.CanonicalKey());
    EXPECT_GT(result->normal[i].seconds, 0);
    EXPECT_GT(result->speculative[i].seconds, 0);
  }

  // The headline result: speculation wins overall, with manipulations
  // actually issued and mostly completing.
  EXPECT_GT(result->overall_improvement, 0.10);
  EXPECT_GT(result->manipulations_issued, 10u);
  EXPECT_GT(result->manipulations_completed, 0u);
  EXPECT_GE(result->noncompletion_rate, 0.0);
  EXPECT_LT(result->noncompletion_rate, 0.6);
  EXPECT_GT(result->rewritten_query_fraction, 0.3);
  EXPECT_GT(result->avg_materialization_seconds, 0);
}

TEST(ExperimentTest, BucketsComputeFromRun) {
  auto result = RunSingleUserExperiment(TinyConfig());
  ASSERT_TRUE(result.ok());
  BucketOptions opts = AutoBuckets(result->normal, 6, 3);
  auto buckets = BucketImprovements(result->normal, result->speculative,
                                    opts);
  EXPECT_FALSE(buckets.empty());
  size_t covered = 0;
  for (const auto& b : buckets) covered += b.count;
  EXPECT_GT(covered, result->normal.size() / 3);
}

TEST(ExperimentTest, PrematerializedViewsExperiment) {
  ExperimentConfig cfg = TinyConfig();
  auto result = RunMatViewsExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->normal.size(), result->views_only.size());
  ASSERT_EQ(result->normal.size(), result->spec_only.size());
  ASSERT_EQ(result->normal.size(), result->spec_views.size());
  // Speculation clearly beats plain normal processing; pre-materialized
  // views may lose slightly on short-query-dominated traces (the paper's
  // Figure 6(b) shows the same negative short buckets for Views) but
  // must not be catastrophic, and the combination must not be much
  // worse than views alone.
  double views = Improvement(result->normal, result->views_only);
  double spec = Improvement(result->normal, result->spec_only);
  double combo = Improvement(result->normal, result->spec_views);
  EXPECT_GT(spec, 0.05);
  EXPECT_GT(views, -0.25);
  EXPECT_GT(combo, views - 0.10);

  // Views do get used, and at least some rewritten query wins big
  // (answering from a pre-joined view instead of executing the join).
  // The bucket-level crossover is a statistical property of larger runs
  // and is demonstrated by bench_fig6_matviews.
  size_t used = 0;
  double best = 0;
  for (size_t i = 0; i < result->normal.size(); i++) {
    if (result->views_only[i].views_used.empty()) continue;
    used++;
    if (result->normal[i].seconds > 0) {
      best = std::max(best, 1.0 - result->views_only[i].seconds /
                                result->normal[i].seconds);
    }
  }
  EXPECT_GE(used, result->normal.size() / 5);
  EXPECT_GT(best, 0.10);
}

TEST(ExperimentTest, MultiUserExperiment) {
  ExperimentConfig cfg = TinyConfig();
  cfg.num_users = 3;
  cfg.buffer_pool_pages = 3 * cfg.buffer_pool_pages;
  cfg.engine.speculator.space.join_materializations = false;  // §6.3
  auto result = RunMultiUserExperiment(cfg, 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->normal.size(), result->speculative.size());
  ASSERT_GT(result->normal.size(), 60u);
  EXPECT_EQ(result->engine_stats.size(), 3u);
  // Selection-only speculation still helps in the multi-user setting.
  EXPECT_GT(result->overall_improvement, 0.0);
}

TEST(ExperimentTest, PrematerializeCreatesConnectedSubsets) {
  ExperimentConfig cfg = TinyConfig();
  auto db = BuildDatabase(cfg);
  ASSERT_TRUE(db.ok());
  auto created = PrematerializeAllJoins(db->get());
  ASSERT_TRUE(created.ok());
  // The 6-relation FK graph has a substantial number of connected
  // >=2-relation subsets; every one becomes a view.
  EXPECT_GT(*created, 20u);
  EXPECT_EQ(db->get()->views().size(), *created);
  for (const auto* view : db->get()->views().All()) {
    EXPECT_TRUE(view->definition.IsConnected());
    EXPECT_GE(view->definition.relations().size(), 2u);
    const TableInfo* table = db->get()->catalog().GetTable(view->table_name);
    ASSERT_NE(table, nullptr);
    EXPECT_GT(table->stats.row_count(), 0u);
  }
}

}  // namespace
}  // namespace sqp
