// Chaos testing: replay full traces under randomized fault schedules and
// assert the paper's best-effort invariant (§3.1): speculation may fail
// at any point, but (a) every final query returns results identical to a
// no-speculation run, and (b) Shutdown() leaves zero leaked pages,
// views, or catalog entries. Also unit-tests the FaultInjector itself,
// storage-layer fault propagation, and the engine's degradation
// machinery (retry/backoff, circuit breaker, storage budget).
#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "db/database.h"
#include "sim/sim_server.h"
#include "speculation/engine.h"
#include "test_util.h"
#include "trace/trace.h"

namespace sqp {
namespace {

using testutil::RsJoin;
using testutil::Sel;

// ------------------------------------------------------- FaultInjector

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectorTest, UnarmedPointsNeverFire) {
  EXPECT_TRUE(FaultInjector::Global().Check("disk.read").ok());
  EXPECT_FALSE(FaultInjector::Global().armed());
}

TEST_F(FaultInjectorTest, EveryNthFiresOnSchedule) {
  FaultSpec spec = FaultSpec::EveryNth(3);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("p", spec);
  std::vector<bool> fired;
  for (int i = 0; i < 9; i++) {
    fired.push_back(!FaultInjector::Global().Check("p").ok());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      true, false, false, true}));
  EXPECT_EQ(FaultInjector::Global().fires("p"), 3u);
  EXPECT_EQ(FaultInjector::Global().hits("p"), 9u);
}

TEST_F(FaultInjectorTest, OneShotFiresExactlyOnce) {
  FaultSpec spec = FaultSpec::OneShot(2, StatusCode::kInternal);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("p", spec);
  EXPECT_TRUE(FaultInjector::Global().Check("p").ok());
  Status fault = FaultInjector::Global().Check("p");
  EXPECT_EQ(fault.code(), StatusCode::kInternal);
  EXPECT_FALSE(fault.IsRetryable());
  for (int i = 0; i < 5; i++) {
    EXPECT_TRUE(FaultInjector::Global().Check("p").ok());
  }
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicInSeed) {
  auto run = [](uint64_t seed) {
    FaultInjector::Global().Reset();
    FaultInjector::Global().Seed(seed);
    FaultSpec spec = FaultSpec::Probability(0.5);
    spec.only_in_region = false;
    FaultInjector::Global().Arm("p", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; i++) {
      fired.push_back(!FaultInjector::Global().Check("p").ok());
    }
    return fired;
  };
  auto a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FaultInjectorTest, RegionScopedFaultsFireOnlyInRegion) {
  FaultInjector::Global().Arm("p", FaultSpec::EveryNth(1));  // always
  EXPECT_TRUE(FaultInjector::Global().Check("p").ok());
  {
    ScopedFaultRegion region;
    Status fault = FaultInjector::Global().Check("p");
    EXPECT_EQ(fault.code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE(fault.IsRetryable());
  }
  EXPECT_TRUE(FaultInjector::Global().Check("p").ok());
}

// ----------------------------------------------- storage fault plumbing

class StorageFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(StorageFaultTest, ReadFaultPropagatesThroughBufferPool) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 2);
  auto fresh = pool.NewPage();
  ASSERT_TRUE(fresh.ok());
  pool.UnpinPage(fresh->first, true);
  ASSERT_TRUE(pool.Reset().ok());

  FaultSpec spec = FaultSpec::OneShot(1);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("disk.read", spec);
  auto miss = pool.FetchPage(fresh->first);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kResourceExhausted);
  // The pool recovered its victim frame: the next fetch succeeds.
  auto retry = pool.FetchPage(fresh->first);
  ASSERT_TRUE(retry.ok());
  pool.UnpinPage(fresh->first, false);
}

TEST_F(StorageFaultTest, EvictionWriteFaultLosesNoData) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 1);  // single frame: every NewPage evicts
  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  a->second->Insert(reinterpret_cast<const uint8_t*>("xy"), 2);
  pool.UnpinPage(a->first, true);

  FaultSpec spec = FaultSpec::OneShot(1);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("disk.write", spec);
  // Evicting the dirty frame needs a flush, which fails once.
  auto b = pool.NewPage();
  ASSERT_FALSE(b.ok());
  FaultInjector::Global().Reset();
  // The dirty page survived the failed eviction intact.
  auto back = pool.FetchPage(a->first);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->slot_count(), 1);
  pool.UnpinPage(a->first, false);
}

TEST_F(StorageFaultTest, FailedMaterializationLeaksNothing) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(500, 1500));
  uint64_t pages_before = db->disk_manager().live_pages();
  size_t tables_before = db->catalog().TableNames().size();

  FaultSpec spec = FaultSpec::EveryNth(50, StatusCode::kInternal);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("materialize.append", spec);
  QueryGraph query;
  query.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{90})));
  auto result = db->Materialize(query, "doomed_mv");
  ASSERT_FALSE(result.ok());
  FaultInjector::Global().Reset();

  EXPECT_EQ(db->catalog().GetTable("doomed_mv"), nullptr);
  EXPECT_EQ(db->catalog().TableNames().size(), tables_before);
  EXPECT_EQ(db->disk_manager().live_pages(), pages_before);
}

// -------------------------------------------------- engine degradation

TraceEvent SelAdd(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kAddSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent SelDel(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kRemoveSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent JoinAdd(JoinPred j) {
  TraceEvent e;
  e.type = TraceEventType::kAddJoin;
  e.join = std::move(j);
  return e;
}

class EngineDegradationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    db_.reset(testutil::MakeTwoTableDb(2000, 6000));
    ASSERT_TRUE(db_->ColdStart().ok());
  }
  void TearDown() override { FaultInjector::Global().Reset(); }

  SelectionPred SelectiveSel() {
    return Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  }

  std::unique_ptr<Database> db_;
  SimServer server_;
};

TEST_F(EngineDegradationTest, TransientFailureRetriesWithBackoffThenSucceeds) {
  SpeculationEngineOptions options;
  options.max_retries = 5;
  options.retry_backoff_seconds = 1.0;
  SpeculationEngine engine(db_.get(), &server_, options);

  // The first manipulation attempt fails with a transient error.
  FaultInjector::Global().Arm("engine.manipulation", FaultSpec::OneShot(1));
  ASSERT_TRUE(engine.OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  EXPECT_EQ(engine.stats().manipulations_failed, 1u);
  EXPECT_EQ(engine.stats().retries, 1u);
  EXPECT_EQ(engine.stats().manipulations_issued, 0u);

  // Within the backoff window nothing is attempted.
  ASSERT_TRUE(engine.OnUserEvent(JoinAdd(RsJoin()), 0.5).ok());
  EXPECT_EQ(engine.stats().manipulations_failed, 1u);
  EXPECT_EQ(engine.stats().manipulations_issued, 0u);

  // Past the backoff the retry succeeds (the fault was one-shot).
  ASSERT_TRUE(engine.OnUserEvent(
                  SelAdd(Sel("s", "s_c", CompareOp::kLt, Value(int64_t{3}))),
                  2.0)
                  .ok());
  EXPECT_EQ(engine.stats().manipulations_issued, 1u);
  EXPECT_EQ(engine.stats().manipulations_failed, 1u);
  ASSERT_TRUE(engine.Shutdown().ok());
}

TEST_F(EngineDegradationTest, CircuitBreakerSuspendsAndRecovers) {
  SpeculationEngineOptions options;
  options.max_retries = 0;  // every failure counts toward the breaker
  options.circuit_breaker_threshold = 2;
  options.circuit_breaker_cooldown_seconds = 50.0;
  SpeculationEngine engine(db_.get(), &server_, options);

  FaultInjector::Global().Arm(
      "engine.manipulation",
      FaultSpec::Probability(1.0, StatusCode::kInternal));
  ASSERT_TRUE(engine.OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  ASSERT_TRUE(engine.OnUserEvent(JoinAdd(RsJoin()), 1.0).ok());
  EXPECT_EQ(engine.stats().manipulations_failed, 2u);
  EXPECT_EQ(engine.stats().speculation_suspended_events, 1u);

  // While suspended: no further attempts, sessions keep working.
  ASSERT_TRUE(engine.OnUserEvent(
                  SelAdd(Sel("s", "s_c", CompareOp::kLt, Value(int64_t{3}))),
                  2.0)
                  .ok());
  EXPECT_EQ(engine.stats().manipulations_failed, 2u);
  auto go = engine.OnGo(3.0);
  ASSERT_TRUE(go.ok());

  // After the cooldown (and with the fault gone) speculation resumes.
  FaultInjector::Global().Reset();
  ASSERT_TRUE(engine.OnUserEvent(SelAdd(SelectiveSel()), 60.0).ok());
  EXPECT_EQ(engine.stats().manipulations_issued, 1u);
  ASSERT_TRUE(engine.Shutdown().ok());
}

TEST_F(EngineDegradationTest, StorageBudgetEvictsLeastRecentlyUsefulViews) {
  SpeculationEngineOptions options;
  options.max_speculative_pages = 2;
  SpeculationEngine engine(db_.get(), &server_, options);

  // First formulation: a small selective materialization completes.
  ASSERT_TRUE(engine.OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  server_.AdvanceTo(100.0);
  auto go = engine.OnGo(100.0);
  ASSERT_TRUE(go.ok());
  ASSERT_TRUE(engine.OnQueryResult(101.0).ok());
  size_t views_after_first = engine.live_views().size();

  // Second formulation keeps the selection and grows the query; its
  // larger materialization pushes the total over the budget.
  ASSERT_TRUE(engine.OnUserEvent(JoinAdd(RsJoin()), 110.0).ok());
  ASSERT_TRUE(engine.OnUserEvent(
                  SelAdd(Sel("s", "s_c", CompareOp::kLt, Value(int64_t{25}))),
                  111.0)
                  .ok());
  server_.AdvanceTo(400.0);
  ASSERT_TRUE(engine.OnQueryResult(400.0).ok());

  // Whatever completed, the budget holds: total speculative pages
  // bounded, and at least one eviction happened if the total overflowed.
  uint64_t total_pages = 0;
  for (const auto& name : engine.live_views()) {
    const TableInfo* info = db_->catalog().GetTable(name);
    ASSERT_NE(info, nullptr);
    total_pages += info->heap->page_count();
  }
  EXPECT_LE(total_pages, options.max_speculative_pages);
  if (engine.stats().manipulations_completed >= 2 && views_after_first > 0) {
    EXPECT_GE(engine.stats().views_evicted_for_budget, 1u);
  }
  ASSERT_TRUE(engine.Shutdown().ok());
  EXPECT_EQ(db_->views().size(), 0u);
}

// ------------------------------------------------------- chaos replays

/// Deterministic synthetic session over the r/s schema: formulations of
/// 1-3 selections (plus optionally the r-s join), churn edits, GOs, and
/// inter-query retention — everything the engine's GC and cancellation
/// paths care about.
Trace MakeChaosTrace(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  Trace trace;
  trace.user_id = seed;
  trace.seed = seed;
  double t = 1.0;
  auto emit = [&](TraceEvent e) {
    t += rng.NextDouble(0.5, 6.0);
    e.timestamp = t;
    trace.events.push_back(std::move(e));
  };

  const bool use_join = rng.NextBool(0.7);
  bool join_present = false;
  std::vector<SelectionPred> present;  // currently-present selections
  // Strictly increasing constants: every drawn predicate is unique, so
  // churn removals can never silently delete a kept selection.
  int64_t next_r = 3, next_s = 2;

  auto draw_sel = [&](bool on_s) {
    if (on_s) {
      next_s += 3;
      return Sel("s", "s_c", CompareOp::kLt, Value(next_s));
    }
    next_r += 5;
    return Sel("r", "r_a", CompareOp::kLt, Value(next_r));
  };

  const size_t queries = 6 + rng.NextRange(4);
  for (size_t q = 0; q < queries; q++) {
    if (use_join && !join_present) {
      emit(JoinAdd(RsJoin()));
      join_present = true;
    }
    // Keep at least one selection on r at all times.
    bool has_r = false;
    for (const auto& s : present) has_r |= s.table == "r";
    size_t adds = (has_r ? 0 : 1) + rng.NextRange(2);
    for (size_t a = 0; a < adds || !has_r; a++) {
      bool on_s = join_present && rng.NextBool(0.4) && has_r;
      SelectionPred sel = draw_sel(on_s);
      present.push_back(sel);
      has_r |= sel.table == "r";
      emit(SelAdd(sel));
    }
    // Churn: a transient selection added and removed pre-GO (drives
    // manipulation cancellation mid-formulation).
    if (rng.NextBool(0.4)) {
      SelectionPred churn = draw_sel(join_present);
      emit(SelAdd(churn));
      emit(SelDel(churn));
    }
    TraceEvent go;
    go.type = TraceEventType::kGo;
    emit(go);
    // Retire some selections between queries (drives GC).
    for (size_t i = present.size(); i-- > 0;) {
      if (rng.NextBool(0.35)) {
        emit(SelDel(present[i]));
        present.erase(present.begin() + i);
      }
    }
  }
  return trace;
}

/// Arm a randomized fault schedule: a subset of all fault points, mixed
/// transient/permanent codes, probability or every-Nth triggers.
void ArmRandomFaults(uint64_t seed) {
  FaultInjector& injector = FaultInjector::Global();
  injector.Reset();
  injector.Seed(seed * 7919 + 17);
  Rng rng(seed * 0x2545f4914f6cdd1dULL + 99);
  const char* points[] = {
      "disk.read",           "disk.write",
      "disk.allocate",       "materialize.append",
      "catalog.index_build", "catalog.histogram_build",
      "engine.manipulation",
  };
  bool any = false;
  for (const char* point : points) {
    if (!rng.NextBool(0.55)) continue;
    any = true;
    StatusCode code = rng.NextBool(0.6) ? StatusCode::kResourceExhausted
                                        : StatusCode::kInternal;
    FaultSpec spec =
        rng.NextBool(0.5)
            ? FaultSpec::Probability(rng.NextDouble(0.005, 0.15), code)
            : FaultSpec::EveryNth(20 + rng.NextRange(500), code);
    injector.Arm(point, spec);
  }
  if (!any) {
    injector.Arm("engine.manipulation", FaultSpec::EveryNth(2));
  }
}

/// Render a query's result rows as an order-insensitive multiset. The
/// physical plan dictates the output column order (a view-rewritten
/// plan may emit s-columns before r-columns), so rows are canonicalized
/// by sorting columns by name — unique across tables by convention.
std::vector<std::string> RowSet(const QueryResult& result) {
  std::vector<size_t> order(result.schema.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.schema.column(a).name < result.schema.column(b).name;
  });
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Tuple& tuple : result.rows) {
    std::string s;
    for (size_t i : order) {
      s += result.schema.column(i).name;
      s += '=';
      s += tuple[i].ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Replay one trace (the single-user replayer's loop, keeping rows).
Result<std::vector<std::vector<std::string>>> RunSession(
    Database* db, const Trace& trace,
    const SpeculationEngineOptions& options) {
  SQP_RETURN_IF_ERROR(db->ColdStart());
  SimServer server;
  SpeculationEngine engine(db, &server, options);
  std::vector<std::vector<std::string>> results;
  double exec_offset = 0;

  for (const auto& event : trace.events) {
    double sim_time = event.timestamp + exec_offset;
    server.AdvanceTo(sim_time);
    if (event.type != TraceEventType::kGo) {
      SQP_RETURN_IF_ERROR(engine.OnUserEvent(event, sim_time));
      continue;
    }
    QueryGraph final_query = engine.partial();
    auto submit_time = engine.OnGo(sim_time);
    if (!submit_time.ok()) return submit_time.status();
    if (*submit_time > sim_time) {
      server.AdvanceTo(*submit_time);
      SQP_RETURN_IF_ERROR(engine.ResolveWait(*submit_time));
    }
    ExecuteOptions exec;
    exec.keep_rows = true;
    exec.view_mode = options.enabled ? engine.final_view_mode()
                                     : ViewMode::kCostBased;
    auto result = db->Execute(final_query, exec);
    if (!result.ok()) return result.status();
    SimServer::JobId job = server.Submit(result->seconds);
    double done = server.RunUntilComplete(job);
    exec_offset += done - sim_time;
    SQP_RETURN_IF_ERROR(engine.OnQueryResult(done));
    results.push_back(RowSet(*result));
  }
  SQP_RETURN_IF_ERROR(engine.Shutdown());
  return results;
}

TEST(ChaosReplayTest, FaultedReplaysMatchBaselineAndLeakNothing) {
  uint64_t base_seed = 1;
  if (const char* env = std::getenv("SQP_CHAOS_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(800, 2400));
  FaultInjector::Global().Reset();

  uint64_t total_fires = 0;
  for (uint64_t i = 0; i < 10; i++) {
    const uint64_t seed = base_seed + i;
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    Trace trace = MakeChaosTrace(seed);

    // Baseline: speculation disabled, no faults.
    SpeculationEngineOptions off;
    off.enabled = false;
    auto baseline = RunSession(db.get(), trace, off);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    const uint64_t pages_before = db->disk_manager().live_pages();
    const size_t tables_before = db->catalog().TableNames().size();
    ASSERT_EQ(db->views().size(), 0u);

    // Speculative replay under an injected fault schedule, with tight
    // failure-handling knobs so retries, breaker trips, and budget
    // evictions all get exercised.
    ArmRandomFaults(seed);
    SpeculationEngineOptions on;
    on.enabled = true;
    on.max_retries = 2;
    on.retry_backoff_seconds = 0.25;
    on.circuit_breaker_threshold = 3;
    on.circuit_breaker_cooldown_seconds = 20.0;
    on.max_speculative_pages = 24;
    auto spec = RunSession(db.get(), trace, on);
    total_fires += FaultInjector::Global().total_fires();
    FaultInjector::Global().Reset();
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();

    // (a) Final-query results identical to the no-speculation run.
    ASSERT_EQ(spec->size(), baseline->size());
    for (size_t q = 0; q < baseline->size(); q++) {
      EXPECT_EQ((*spec)[q], (*baseline)[q]) << "query " << q << " diverged";
    }

    // (b) Shutdown left no residue: pages, tables, views all restored.
    EXPECT_EQ(db->disk_manager().live_pages(), pages_before);
    EXPECT_EQ(db->catalog().TableNames().size(), tables_before);
    EXPECT_EQ(db->views().size(), 0u);
  }
  // The schedules must actually have injected faults somewhere across
  // the 10 seeds — otherwise this test proved nothing.
  EXPECT_GT(total_fires, 0u);
}

}  // namespace
}  // namespace sqp
