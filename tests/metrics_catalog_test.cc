// Doc-drift guard: the metrics registered at runtime and the catalogue
// in docs/METRICS.md must agree in both directions. A new metric
// without a doc row fails here, as does a doc row whose metric no
// longer exists in the code. Mirrors tests/fault_points_test.cc.
//
// The registry is find-or-create, so a metric "exists" only once some
// subsystem looks it up: the test drives one of everything — both
// storage shapes, a replay-grade speculation stack, recovery, repair,
// membership changes (including the joint-commit failure path) — so
// the registered set reflects a full multi-node deployment, lazy
// registrations included.
#include <fstream>
#include <memory>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/metrics_registry.h"
#include "common/metrics_timeline.h"
#include "db/database.h"
#include "sim/sim_server.h"
#include "speculation/engine.h"
#include "test_util.h"

#ifndef SQP_METRICS_DOC
#error "build must define SQP_METRICS_DOC (path to docs/METRICS.md)"
#endif

namespace sqp {
namespace {

/// Concrete per-node names ("storage.node2.disk.reads") collapse onto
/// their documented template ("storage.node<k>.disk.reads"). The
/// digit-less "storage.node.*" router family is untouched.
std::string Normalize(const std::string& name) {
  static const std::regex node_re("node[0-9]+\\.");
  return std::regex_replace(name, node_re, "node<k>.");
}

/// Every backtick-quoted name in the *first cell* of each table row of
/// the "## Metrics" section. Other cells mention units and counters in
/// backticks, so only the name column is parsed.
std::set<std::string> DocumentedMetrics(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::set<std::string> names;
  std::string line;
  bool in_section = false;
  while (std::getline(in, line)) {
    if (line.rfind("## ", 0) == 0) {
      in_section = line == "## Metrics";
      continue;
    }
    if (!in_section || line.empty() || line[0] != '|') continue;
    size_t cell_end = line.find('|', 1);
    if (cell_end == std::string::npos) continue;
    const std::string cell = line.substr(0, cell_end);
    size_t pos = 0;
    while ((pos = cell.find('`', pos)) != std::string::npos) {
      size_t close = cell.find('`', pos + 1);
      if (close == std::string::npos) break;
      std::string name = cell.substr(pos + 1, close - pos - 1);
      if (!name.empty() && name != "---") names.insert(name);
      pos = close + 1;
    }
  }
  return names;
}

std::string JoinSet(const std::set<std::string>& set) {
  std::ostringstream out;
  for (const auto& s : set) out << "  " << s << "\n";
  return out.str();
}

/// Touch every registration site, eager and lazy.
void RegisterEverything() {
  // Simulator + single-node storage stack (legacy "storage.disk.*").
  // The Database constructor registers the attr.* attribution family
  // eagerly; the timeline sampler registers telemetry.* and ticks once
  // so its self-metrics carry values.
  SimServer server;
  std::unique_ptr<Database> single(testutil::MakeTwoTableDb(100, 300));
  MetricsTimeline timeline;
  timeline.Flush(1.0);

  // Speculation stack: engine construction registers the engine,
  // speculator and flight-recorder families; a GO observation is the
  // learner's lazy path.
  SpeculationEngineOptions engine_options;
  SpeculationEngine engine(single.get(), &server, engine_options);
  ASSERT_TRUE(engine.RecoverAfterCrash(0.0).ok());  // views_recovered
  Learner learner;
  learner.ObserveGo({}, QueryGraph{}, nullptr, 1.0);

  // Multi-node stack: per-node disks, router, replicated manifest.
  DatabaseOptions options;
  options.buffer_pool_pages = 128;
  options.storage_nodes = 3;
  Database db(options);
  Schema schema({{"a_id", TypeId::kInt64}, {"a_pay", TypeId::kInt64}});
  ASSERT_TRUE(db.CreateTable("a", schema).ok());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 200; i++) {
    rows.push_back(Tuple{Value(i), Value(i % 7)});
  }
  ASSERT_TRUE(db.BulkLoad("a", rows).ok());

  // EXPLAIN ANALYZE registers the batch-exec family, the plan q-error
  // histogram and the cross-shard transfer counter.
  QueryGraph q;
  q.AddSelection(
      testutil::Sel("a", "a_pay", CompareOp::kLt, Value(int64_t{3})));
  ExecuteOptions exec;
  exec.explain_analyze = true;
  ASSERT_TRUE(db.Execute(q, exec).ok());

  // Membership: a join (with rebalancing), a decommission, and the
  // joint-commit failure path behind an injected fault.
  auto added = db.AddNode();
  ASSERT_TRUE(added.ok());
  ASSERT_TRUE(db.DecommissionNode(*added).ok());
  FaultSpec jointcommit = FaultSpec::OneShot(1, StatusCode::kInternal);
  jointcommit.only_in_region = false;
  FaultInjector::Global().Arm("membership.jointcommit", jointcommit);
  EXPECT_FALSE(db.AddNode().ok());
  FaultInjector::Global().Reset();

  // Node loss, recovery and re-protection.
  db.KillNode(2);
  ASSERT_TRUE(db.Reopen().ok());
  ASSERT_TRUE(db.Repair().ok());

  // Morsel-parallel engine (DESIGN.md §15): a threaded database
  // registers the scheduler family; running a query and a speculative
  // materialization registers both parallel morsel families.
  std::unique_ptr<Database> parallel(
      testutil::MakeTwoTableDb(100, 300, /*seed=*/7, /*pool_pages=*/256,
                               /*exec_threads=*/2));
  QueryGraph pq;
  pq.AddRelation("r");
  ASSERT_TRUE(parallel->Execute(pq).ok());
  ASSERT_TRUE(
      parallel->Materialize(pq, "mv_catalog", /*register_view=*/false).ok());
}

TEST(MetricsCatalogDriftTest, RegisteredMetricsMatchTheDocCatalogue) {
  RegisterEverything();

  std::set<std::string> registered;
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    registered.insert(Normalize(name));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    registered.insert(Normalize(name));
  }
  for (const auto& [name, value] : snapshot.histograms) {
    registered.insert(Normalize(name));
  }
  std::set<std::string> documented = DocumentedMetrics(SQP_METRICS_DOC);

  std::set<std::string> undocumented;
  for (const auto& m : registered) {
    if (documented.count(m) == 0) undocumented.insert(m);
  }
  std::set<std::string> stale;
  for (const auto& m : documented) {
    if (registered.count(m) == 0) stale.insert(m);
  }
  EXPECT_TRUE(undocumented.empty())
      << "metrics registered in code but missing from docs/METRICS.md:\n"
      << JoinSet(undocumented);
  EXPECT_TRUE(stale.empty())
      << "metrics documented in docs/METRICS.md but never registered by "
         "the code:\n"
      << JoinSet(stale);
  // Belt and braces: the doc parser found a plausible table at all.
  EXPECT_GE(documented.size(), 60u);

  // The telemetry/attribution families this harness drives must be in
  // the registered set (and therefore, via the checks above, in the
  // docs): guards against RegisterEverything silently losing them.
  for (const char* name :
       {"attr.query.seconds", "attr.query.blocks", "attr.query.tuples",
        "attr.manipulation.seconds", "attr.maintenance.seconds",
        "attr.sessions", "telemetry.ticks", "telemetry.ticks_dropped",
        "telemetry.series", "spec.cache.views", "spec.cache.pages",
        "sim.active_jobs"}) {
    EXPECT_TRUE(registered.count(name) == 1) << "not registered: " << name;
  }
}

}  // namespace
}  // namespace sqp
