// PartialQueryTracker: formulation bookkeeping feeding the Learner.
#include "speculation/partial_query.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::Sel;

TraceEvent Event(TraceEventType type, SelectionPred s) {
  TraceEvent e;
  e.type = type;
  e.selection = std::move(s);
  return e;
}

TraceEvent JoinEvent(TraceEventType type, JoinPred j) {
  TraceEvent e;
  e.type = type;
  e.join = std::move(j);
  return e;
}

TEST(PartialQueryTrackerTest, TracksCurrentGraph) {
  PartialQueryTracker tracker;
  auto sel = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  tracker.ApplyEvent(Event(TraceEventType::kAddSelection, sel));
  tracker.ApplyEvent(JoinEvent(TraceEventType::kAddJoin, testutil::RsJoin()));
  EXPECT_EQ(tracker.current().selections().size(), 1u);
  EXPECT_EQ(tracker.current().joins().size(), 1u);
}

TEST(PartialQueryTrackerTest, SeenPartsIncludeRemovedOnes) {
  PartialQueryTracker tracker;
  auto transient = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  tracker.ApplyEvent(Event(TraceEventType::kAddSelection, transient));
  tracker.ApplyEvent(Event(TraceEventType::kRemoveSelection, transient));
  // Gone from the graph, but the Learner must still observe it (it did
  // not survive — exactly the negative example survival learns from).
  EXPECT_TRUE(tracker.current().selections().empty());
  ASSERT_EQ(tracker.seen_parts().size(), 1u);
  EXPECT_EQ(tracker.seen_parts().begin()->first, transient.Key());
}

TEST(PartialQueryTrackerTest, GoSeedsNextFormulationWithSurvivors) {
  PartialQueryTracker tracker;
  auto kept = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  auto dropped = Sel("s", "s_c", CompareOp::kGt, Value(int64_t{9}));
  tracker.ApplyEvent(Event(TraceEventType::kAddSelection, kept));
  tracker.ApplyEvent(Event(TraceEventType::kAddSelection, dropped));
  tracker.ApplyEvent(Event(TraceEventType::kRemoveSelection, dropped));
  tracker.OnGo();
  // The survivor seeds the next formulation's seen-set; the transient
  // part does not.
  ASSERT_EQ(tracker.seen_parts().size(), 1u);
  EXPECT_EQ(tracker.seen_parts().begin()->first, kept.Key());
  EXPECT_EQ(tracker.current().selections().size(), 1u);
}

TEST(PartialQueryTrackerTest, FormulationStartIsFirstEventTime) {
  PartialQueryTracker tracker;
  EXPECT_LT(tracker.formulation_start(), 0);
  tracker.NoteEventTime(12.5);
  tracker.NoteEventTime(20.0);  // later events do not move the start
  EXPECT_DOUBLE_EQ(tracker.formulation_start(), 12.5);
  tracker.OnGo();
  EXPECT_LT(tracker.formulation_start(), 0);  // reset per formulation
  tracker.NoteEventTime(30.0);
  EXPECT_DOUBLE_EQ(tracker.formulation_start(), 30.0);
}

TEST(PartialQueryTrackerTest, FeatureKeysDistinguishKinds) {
  ObservedPart sel_part;
  sel_part.is_join = false;
  sel_part.selection = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  ObservedPart join_part;
  join_part.is_join = true;
  join_part.join = testutil::RsJoin();
  EXPECT_NE(sel_part.FeatureKey(), join_part.FeatureKey());
  // Selections share a feature per (table, column) across constants.
  ObservedPart other = sel_part;
  other.selection.constant = Value(int64_t{99});
  EXPECT_EQ(sel_part.FeatureKey(), other.FeatureKey());
}

}  // namespace
}  // namespace sqp
