// Observability layer (DESIGN.md §9): metrics registry semantics, span
// tracing, Chrome trace_event export validity, and the replay wiring
// that must show manipulation spans overlapping think time.
#include <algorithm>
#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/metrics_registry.h"
#include "common/tracing.h"
#include "harness/replayer.h"
#include "sim/sim_server.h"
#include "speculation/engine.h"
#include "test_util.h"
#include "trace/trace.h"

namespace sqp {
namespace {

using testutil::RsJoin;
using testutil::Sel;

// ---------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, CounterIncrementAndSnapshot) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("a.b.count");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5u);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("a.b.count"), 5u);
  EXPECT_EQ(snap.counter("missing"), 0u);
}

TEST(MetricsRegistryTest, HandlesAreFindOrCreateAndPointerStable) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  registry.GetCounter("y");
  registry.GetGauge("g");
  EXPECT_EQ(registry.GetCounter("x"), a);  // stable across registrations
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistryTest, GaugeHoldsLastValue) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("level");
  g->Set(2.5);
  g->Set(1.25);
  EXPECT_DOUBLE_EQ(g->value(), 1.25);
  EXPECT_DOUBLE_EQ(registry.Snapshot().gauges.at("level"), 1.25);
}

TEST(MetricsRegistryTest, HistogramBucketsAndOverflow) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.GetHistogram("dur", {1.0, 10.0});
  h->Observe(0.5);   // bucket 0 (<= 1)
  h->Observe(1.0);   // bucket 0 (inclusive upper bound)
  h->Observe(5.0);   // bucket 1
  h->Observe(99.0);  // overflow
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 105.5);
  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 1u);
  EXPECT_EQ(h->bucket_count(2), 1u);  // overflow bucket
  MetricsSnapshot snap = registry.Snapshot();
  const auto& entry = snap.histograms.at("dur");
  EXPECT_EQ(entry.counts, (std::vector<uint64_t>{2, 1, 1}));
  EXPECT_EQ(entry.bounds, (std::vector<double>{1.0, 10.0}));
}

TEST(MetricsRegistryTest, HistogramKeepsFirstLayout) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.GetHistogram("dur", {1.0});
  EXPECT_EQ(registry.GetHistogram("dur", {5.0, 50.0}), h);
  EXPECT_EQ(h->bounds(), (std::vector<double>{1.0}));
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  HistogramMetric* h = registry.GetHistogram("h", {1.0});
  c->Increment(7);
  g->Set(3.0);
  h->Observe(0.5);
  registry.ResetAll();
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.0);
  EXPECT_EQ(h->bucket_count(0), 0u);
  // Handles remain live after reset.
  c->Increment();
  EXPECT_EQ(registry.Snapshot().counter("c"), 1u);
}

TEST(MetricsRegistryTest, FormatListsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("engine.manipulations_issued")->Increment(3);
  registry.GetGauge("pool.fill")->Set(0.5);
  registry.GetHistogram("lat", {1.0})->Observe(0.2);
  std::string text = registry.Snapshot().Format();
  EXPECT_NE(text.find("engine.manipulations_issued"), std::string::npos);
  EXPECT_NE(text.find("pool.fill"), std::string::npos);
  EXPECT_NE(text.find("lat"), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalRegistrySeesSubsystemCounters) {
  MetricsRegistry::Global().ResetAll();
  {
    // A SimServer and a throwaway database exercise the storage and sim
    // counters (construction alone registers them; ops increment them).
    SimServer server;
    SimServer::JobId job = server.Submit(1.0);
    server.AdvanceTo(2.0);
    EXPECT_TRUE(server.IsComplete(job));
    server.Cancel(server.Submit(5.0));
  }
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counter("sim.jobs_submitted"), 2u);
  EXPECT_EQ(snap.counter("sim.jobs_completed"), 1u);
  EXPECT_EQ(snap.counter("sim.jobs_cancelled"), 1u);
  MetricsRegistry::Global().ResetAll();
}

// -------------------------------------------------------------- Tracer

TEST(TracerTest, SpanOpenCloseNesting) {
  Tracer tracer;
  auto session = tracer.BeginSpan("session", "session", 0.0);
  auto inner = tracer.BeginSpan("materialize", "manipulation", 1.0);
  EXPECT_EQ(tracer.open_spans(), 2u);
  tracer.EndSpan(inner, 3.0, "completed");
  tracer.EndSpan(session, 10.0);
  EXPECT_EQ(tracer.open_spans(), 0u);
  ASSERT_EQ(tracer.records().size(), 2u);
  // Completion order: inner first.
  EXPECT_EQ(tracer.records()[0].name, "materialize");
  EXPECT_EQ(tracer.records()[0].status, "completed");
  EXPECT_DOUBLE_EQ(tracer.records()[0].duration(), 2.0);
  EXPECT_EQ(tracer.records()[1].name, "session");
  EXPECT_EQ(tracer.records()[1].status, "ok");
}

TEST(TracerTest, CancelStatusAndUnknownEndIgnored) {
  Tracer tracer;
  auto span = tracer.BeginSpan("m", "manipulation", 5.0);
  tracer.SpanArg(span, "type", "materialize_query");
  tracer.EndSpan(span, 6.5, "cancelled@edit");
  // Double-end and invalid ids are silently ignored.
  tracer.EndSpan(span, 9.0, "completed");
  tracer.EndSpan(Tracer::kInvalidSpan, 9.0);
  tracer.EndSpan(12345, 9.0);
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].status, "cancelled@edit");
  ASSERT_EQ(tracer.records()[0].args.size(), 1u);
  EXPECT_EQ(tracer.records()[0].args[0].second, "materialize_query");
}

TEST(TracerTest, EndBeforeStartClamps) {
  Tracer tracer;
  auto span = tracer.BeginSpan("m", "manipulation", 5.0);
  tracer.EndSpan(span, 4.0);
  EXPECT_DOUBLE_EQ(tracer.records()[0].end, 5.0);
}

TEST(TracerTest, SinkObservesCompletions) {
  struct CountingSink : TraceSink {
    size_t seen = 0;
    void OnRecord(const SpanRecord&) override { seen++; }
  } sink;
  Tracer tracer;
  tracer.set_sink(&sink);
  auto span = tracer.BeginSpan("m", "manipulation", 0.0);
  EXPECT_EQ(sink.seen, 0u);  // open spans are not emitted
  tracer.EndSpan(span, 1.0);
  tracer.Instant("GO", "go", 2.0);
  EXPECT_EQ(sink.seen, 2u);
}

TEST(TracerTest, TimelineIndentsNestedSpans) {
  Tracer tracer;
  auto outer = tracer.BeginSpan("session", "session", 0.0, "user1");
  auto inner = tracer.BeginSpan("mat", "manipulation", 1.0, "user1");
  tracer.EndSpan(inner, 2.0, "completed");
  tracer.EndSpan(outer, 5.0);
  tracer.Instant("GO", "go", 3.0, "user1");
  std::string timeline = tracer.FormatTimeline();
  EXPECT_NE(timeline.find("session: session"), std::string::npos);
  EXPECT_NE(timeline.find("  manipulation: mat (completed)"),
            std::string::npos);
  EXPECT_NE(timeline.find("go: GO"), std::string::npos);
}

// ------------------------------------------- Chrome trace_event export

/// Minimal JSON syntax checker (no external deps): validates the value
/// grammar and returns the end position, or npos on error.
size_t ParseJsonValue(const std::string& s, size_t i);

size_t SkipWs(const std::string& s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) i++;
  return i;
}

size_t ParseJsonString(const std::string& s, size_t i) {
  if (i >= s.size() || s[i] != '"') return std::string::npos;
  for (i++; i < s.size(); i++) {
    if (s[i] == '\\') {
      i++;
      continue;
    }
    if (s[i] == '"') return i + 1;
  }
  return std::string::npos;
}

size_t ParseJsonValue(const std::string& s, size_t i) {
  i = SkipWs(s, i);
  if (i >= s.size()) return std::string::npos;
  if (s[i] == '"') return ParseJsonString(s, i);
  if (s[i] == '{' || s[i] == '[') {
    const char open = s[i], close = open == '{' ? '}' : ']';
    i = SkipWs(s, i + 1);
    if (i < s.size() && s[i] == close) return i + 1;
    for (;;) {
      if (open == '{') {
        i = ParseJsonString(s, SkipWs(s, i));
        if (i == std::string::npos) return i;
        i = SkipWs(s, i);
        if (i >= s.size() || s[i] != ':') return std::string::npos;
        i++;
      }
      i = ParseJsonValue(s, i);
      if (i == std::string::npos) return i;
      i = SkipWs(s, i);
      if (i >= s.size()) return std::string::npos;
      if (s[i] == close) return i + 1;
      if (s[i] != ',') return std::string::npos;
      i++;
    }
  }
  // number / true / false / null
  size_t start = i;
  while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                          s[i] == '-' || s[i] == '+' || s[i] == '.')) {
    i++;
  }
  return i > start ? i : std::string::npos;
}

bool IsValidJson(const std::string& s) {
  size_t end = ParseJsonValue(s, 0);
  return end != std::string::npos && SkipWs(s, end) == s.size();
}

/// All values of an integer field ("ts":N / "dur":N) in emission order.
std::vector<long long> IntField(const std::string& json,
                                const std::string& field) {
  std::vector<long long> out;
  std::string needle = "\"" + field + "\":";
  for (size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + 1)) {
    out.push_back(std::stoll(json.substr(pos + needle.size())));
  }
  return out;
}

TEST(ChromeTraceTest, ExportIsValidJsonWithMonotoneTimestamps) {
  Tracer tracer;
  auto session = tracer.BeginSpan("session", "session", 0.0, "user1");
  auto m1 = tracer.BeginSpan("mat \"quoted\"", "manipulation", 0.5, "user1");
  tracer.SpanArg(m1, "table", "spec_mv_0");
  tracer.EndSpan(m1, 2.0, "completed");
  tracer.Instant("GO", "go", 3.0, "user1");
  auto m2 = tracer.BeginSpan("idx", "manipulation", 3.5, "user2");
  tracer.EndSpan(m2, 4.0, "cancelled@go");
  tracer.EndSpan(session, 5.0);
  auto leaked = tracer.BeginSpan("open", "manipulation", 9.0);
  (void)leaked;  // never ended: must be omitted from the export

  std::string json = tracer.ExportChromeTrace();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.find("open"), std::string::npos);
  EXPECT_NE(json.find("mat \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"cancelled@go\""), std::string::npos);
  // Lanes become named threads.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"user2\""), std::string::npos);

  // ph:"X"/"i" timestamps are sorted monotonically, in microseconds.
  std::vector<long long> ts = IntField(json, "ts");
  EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()));
  ASSERT_FALSE(ts.empty());
  EXPECT_EQ(ts.back(), 3500000);  // m2 at 3.5 s -> 3500000 us
  for (long long d : IntField(json, "dur")) EXPECT_GE(d, 0);
}

TEST(ChromeTraceTest, EmptyTracerStillExportsValidJson) {
  Tracer tracer;
  EXPECT_TRUE(IsValidJson(tracer.ExportChromeTrace()));
}

TEST(ChromeTraceTest, JsonEscapeHandlesControlChars) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

// -------------------------------------------------- replay integration

TraceEvent SelAdd(SelectionPred s, double t) {
  TraceEvent e;
  e.type = TraceEventType::kAddSelection;
  e.selection = std::move(s);
  e.timestamp = t;
  return e;
}

TraceEvent JoinAdd(JoinPred j, double t) {
  TraceEvent e;
  e.type = TraceEventType::kAddJoin;
  e.join = std::move(j);
  e.timestamp = t;
  return e;
}

TraceEvent Go(double t) {
  TraceEvent e;
  e.type = TraceEventType::kGo;
  e.timestamp = t;
  return e;
}

/// Two-query session with generous think time, so a selection
/// materialization completes before each GO.
Trace ThinkyTrace() {
  Trace trace;
  trace.user_id = 3;
  trace.events = {
      SelAdd(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})), 1.0),
      JoinAdd(RsJoin(), 2.0),
      Go(120.0),
      SelAdd(Sel("s", "s_c", CompareOp::kLt, Value(int64_t{10})), 130.0),
      Go(260.0),
  };
  return trace;
}

class ReplayTracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    db_.reset(testutil::MakeTwoTableDb(2000, 6000));
    ASSERT_TRUE(db_->ColdStart().ok());
  }
  void TearDown() override { FaultInjector::Global().Reset(); }

  std::unique_ptr<Database> db_;
};

TEST_F(ReplayTracingTest, ReplayEmitsSessionQueryAndManipulationSpans) {
  Tracer tracer;
  ReplayOptions opts;
  opts.speculation = true;
  opts.tracer = &tracer;
  opts.trace_lane = "user3";
  auto result = TraceReplayer(db_.get(), opts).Replay(ThinkyTrace());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->engine_stats.manipulations_completed, 0u);
  EXPECT_EQ(tracer.open_spans(), 0u);

  const SpanRecord* session = nullptr;
  std::vector<const SpanRecord*> manipulations, queries;
  size_t edits = 0;
  for (const auto& r : tracer.records()) {
    if (r.category == "session") session = &r;
    if (r.category == "manipulation" && r.kind == SpanRecord::Kind::kSpan) {
      manipulations.push_back(&r);
    }
    if (r.category == "query") queries.push_back(&r);
    if (r.category == "edit") edits++;
    EXPECT_EQ(r.lane, "user3");
  }
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(queries.size(), 2u);
  ASSERT_FALSE(manipulations.empty());
  EXPECT_EQ(edits, 3u);

  // The acceptance claim: a completed manipulation span sits entirely
  // inside think time — after an edit, finished before the GO's query.
  bool overlapped = false;
  for (const SpanRecord* m : manipulations) {
    if (m->status != "completed") continue;
    EXPECT_GT(m->duration(), 0.0);
    for (const SpanRecord* q : queries) {
      if (m->end <= q->start + 1e-9) overlapped = true;
    }
  }
  EXPECT_TRUE(overlapped);

  // Derived overlap story agrees with the spans.
  EXPECT_GT(result->overlap.hidden_seconds, 0.0);
  EXPECT_GT(result->overlap.overlap_fraction, 0.0);
  EXPECT_LE(result->overlap.wasted_ratio, 1.0);
  EXPECT_GT(result->overlap.think_seconds, 0.0);

  // And the whole thing exports as valid Chrome JSON.
  EXPECT_TRUE(IsValidJson(tracer.ExportChromeTrace()));
}

TEST_F(ReplayTracingTest, NormalReplayWithoutTracerRecordsNothing) {
  ReplayOptions opts;
  opts.speculation = false;
  auto result = TraceReplayer(db_.get(), opts).Replay(ThinkyTrace());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->overlap.executed_seconds, 0.0);
}

TEST_F(ReplayTracingTest, ChaosRunEmitsRetryAndBreakerInstants) {
  // Every manipulation attempt fails with a permanent error: retries are
  // skipped, the circuit breaker opens after `threshold` failures.
  FaultSpec permanent = FaultSpec::EveryNth(1, StatusCode::kInternal);
  FaultInjector::Global().Arm("engine.manipulation", permanent);

  Tracer tracer;
  SimServer server;
  SpeculationEngineOptions options;
  options.tracer = &tracer;
  options.circuit_breaker_threshold = 2;
  SpeculationEngine engine(db_.get(), &server, options);
  double t = 0;
  for (int i = 0; i < 3; i++) {
    t += 10;
    ASSERT_TRUE(
        engine
            .OnUserEvent(SelAdd(Sel("r", "r_a", CompareOp::kLt,
                                    Value(int64_t{5 + i})),
                                t),
                         t)
            .ok());
  }
  ASSERT_GE(engine.stats().manipulations_failed, 2u);
  ASSERT_GE(engine.stats().speculation_suspended_events, 1u);
  ASSERT_TRUE(engine.Shutdown().ok());

  size_t failures = 0, breakers = 0;
  for (const auto& r : tracer.records()) {
    if (r.name == "manipulation failed") failures++;
    if (r.name == "circuit breaker open") breakers++;
  }
  EXPECT_GE(failures, 2u);
  EXPECT_GE(breakers, 1u);

  // Transient failures additionally schedule retries.
  FaultInjector::Global().Reset();
  FaultSpec transient = FaultSpec::OneShot(1);
  FaultInjector::Global().Arm("engine.manipulation", transient);
  Tracer retry_tracer;
  SpeculationEngineOptions retry_options;
  retry_options.tracer = &retry_tracer;
  SpeculationEngine retry_engine(db_.get(), &server, retry_options);
  ASSERT_TRUE(
      retry_engine
          .OnUserEvent(SelAdd(Sel("r", "r_a", CompareOp::kLt,
                                  Value(int64_t{7})),
                              t + 10),
                       t + 10)
          .ok());
  ASSERT_GE(retry_engine.stats().retries, 1u);
  ASSERT_TRUE(retry_engine.Shutdown().ok());
  bool retry_seen = false;
  for (const auto& r : retry_tracer.records()) {
    if (r.name == "retry scheduled") retry_seen = true;
  }
  EXPECT_TRUE(retry_seen);
}

}  // namespace
}  // namespace sqp
