// Shared fixtures and builders for the sqp test suite.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "optimizer/query_graph.h"

namespace sqp {
namespace testutil {

/// Build a small two-table database:
///   r(r_id INT, r_a INT, r_b DOUBLE, r_s STRING)   -- `rows_r` rows
///   s(s_id INT, s_rid INT, s_c INT)                -- `rows_s` rows,
///                                                     s_rid FK -> r_id
/// r_a is uniform in [0, 100); s_c uniform in [0, 50); r_s cycles over
/// three strings. Deterministic in `seed`.
/// `exec_threads` > 1 gives the database a morsel worker pool
/// (DESIGN.md §15); results and charges are identical at any setting.
inline Database* MakeTwoTableDb(size_t rows_r = 2000, size_t rows_s = 6000,
                                uint64_t seed = 7,
                                size_t pool_pages = 256,
                                size_t exec_threads = 1) {
  DatabaseOptions options;
  options.buffer_pool_pages = pool_pages;
  options.exec_threads = exec_threads;
  auto* db = new Database(options);

  Schema r_schema({{"r_id", TypeId::kInt64},
                   {"r_a", TypeId::kInt64},
                   {"r_b", TypeId::kDouble},
                   {"r_s", TypeId::kString}});
  Schema s_schema({{"s_id", TypeId::kInt64},
                   {"s_rid", TypeId::kInt64},
                   {"s_c", TypeId::kInt64}});
  if (!db->CreateTable("r", r_schema).ok()) return db;
  if (!db->CreateTable("s", s_schema).ok()) return db;

  Rng rng(seed);
  const char* strs[] = {"alpha", "beta", "gamma"};
  std::vector<Tuple> r_rows;
  for (size_t i = 0; i < rows_r; i++) {
    r_rows.push_back(Tuple{Value(static_cast<int64_t>(i)),
                           Value(rng.NextInt(0, 99)),
                           Value(rng.NextDouble(0, 1000)),
                           Value(std::string(strs[i % 3]))});
  }
  (void)db->BulkLoad("r", r_rows);
  std::vector<Tuple> s_rows;
  for (size_t i = 0; i < rows_s; i++) {
    s_rows.push_back(Tuple{
        Value(static_cast<int64_t>(i)),
        Value(rng.NextInt(0, static_cast<int64_t>(rows_r) - 1)),
        Value(rng.NextInt(0, 49))});
  }
  (void)db->BulkLoad("s", s_rows);
  return db;
}

inline SelectionPred Sel(const std::string& table, const std::string& column,
                         CompareOp op, Value v) {
  SelectionPred s;
  s.table = table;
  s.column = column;
  s.op = op;
  s.constant = std::move(v);
  return s;
}

inline JoinPred Join(const std::string& lt, const std::string& lc,
                     const std::string& rt, const std::string& rc) {
  JoinPred j;
  j.left_table = lt;
  j.left_column = lc;
  j.right_table = rt;
  j.right_column = rc;
  j.Canonicalize();
  return j;
}

/// The canonical r-s equijoin of MakeTwoTableDb.
inline JoinPred RsJoin() { return Join("r", "r_id", "s", "s_rid"); }

}  // namespace testutil
}  // namespace sqp
