// Storage layer: slotted pages, tuple serialization, simulated disk,
// buffer pool (LRU + pinning + cost accounting), heap files.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/tuple.h"

namespace sqp {
namespace {

// ----------------------------------------------------------------- Page

TEST(PageTest, InsertAndReadBack) {
  Page page;
  uint8_t rec1[] = {1, 2, 3};
  uint8_t rec2[] = {9, 8};
  int s1 = page.Insert(rec1, 3);
  int s2 = page.Insert(rec2, 2);
  ASSERT_EQ(s1, 0);
  ASSERT_EQ(s2, 1);
  uint16_t len = 0;
  const uint8_t* r = page.Record(0, &len);
  ASSERT_EQ(len, 3);
  EXPECT_EQ(r[2], 3);
  r = page.Record(1, &len);
  ASSERT_EQ(len, 2);
  EXPECT_EQ(r[0], 9);
}

TEST(PageTest, FillsUntilFull) {
  Page page;
  uint8_t rec[100] = {0};
  int inserted = 0;
  while (page.Insert(rec, 100) >= 0) inserted++;
  // 8192 bytes, 4 header, 4 per slot + 100 per record => ~78 records.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 82);
  EXPECT_EQ(page.slot_count(), inserted);
}

TEST(PageTest, InitResets) {
  Page page;
  uint8_t rec[8] = {1};
  page.Insert(rec, 8);
  page.Init();
  EXPECT_EQ(page.slot_count(), 0);
  EXPECT_EQ(page.free_offset(), kPageSize);
}

// ---------------------------------------------------------------- Tuple

TEST(TupleTest, RoundTripAllTypes) {
  Tuple t{Value(int64_t{-5}), Value(3.25), Value("hello world"),
          Value(int64_t{1} << 60)};
  std::vector<uint8_t> buf;
  SerializeTuple(t, &buf);
  EXPECT_EQ(buf.size(), SerializedTupleSize(t));
  Tuple back = DeserializeTuple(buf.data(), buf.size());
  ASSERT_EQ(back.size(), t.size());
  for (size_t i = 0; i < t.size(); i++) EXPECT_EQ(back[i], t[i]);
}

TEST(TupleTest, EmptyStringAndEmptyTuple) {
  Tuple t{Value("")};
  std::vector<uint8_t> buf;
  SerializeTuple(t, &buf);
  Tuple back = DeserializeTuple(buf.data(), buf.size());
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].AsString(), "");

  Tuple empty;
  buf.clear();
  SerializeTuple(empty, &buf);
  EXPECT_EQ(DeserializeTuple(buf.data(), buf.size()).size(), 0u);
}

class TupleRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TupleRoundTrip, RandomTuples) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; iter++) {
    Tuple t;
    size_t n = rng.NextRange(8);
    for (size_t i = 0; i < n; i++) {
      switch (rng.NextRange(3)) {
        case 0:
          t.emplace_back(static_cast<int64_t>(rng.NextUint64()));
          break;
        case 1:
          t.emplace_back(rng.NextDouble(-1e9, 1e9));
          break;
        default: {
          std::string s(rng.NextRange(40), 'x');
          for (auto& c : s) c = 'a' + rng.NextRange(26);
          t.emplace_back(std::move(s));
        }
      }
    }
    std::vector<uint8_t> buf;
    SerializeTuple(t, &buf);
    Tuple back = DeserializeTuple(buf.data(), buf.size());
    ASSERT_EQ(back.size(), t.size());
    for (size_t i = 0; i < t.size(); i++) ASSERT_EQ(back[i], t[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleRoundTrip, ::testing::Values(1, 2, 3));

// ----------------------------------------------------------- DiskManager

TEST(DiskManagerTest, AllocateReadWriteCharges) {
  CostMeter meter;
  DiskManager disk(&meter);
  page_id_t id = *disk.AllocatePage();
  Page page;
  page.Insert(reinterpret_cast<const uint8_t*>("ab"), 2);
  ASSERT_TRUE(disk.WritePage(id, page).ok());
  Page back;
  ASSERT_TRUE(disk.ReadPage(id, &back).ok());
  EXPECT_EQ(back.slot_count(), 1);
  EXPECT_EQ(meter.blocks_read(), 1u);
  EXPECT_EQ(meter.blocks_written(), 1u);
  EXPECT_GT(meter.ElapsedSeconds(), 0);
}

TEST(DiskManagerTest, DeallocateTracksLivePages) {
  CostMeter meter;
  DiskManager disk(&meter);
  page_id_t a = *disk.AllocatePage();
  (void)disk.AllocatePage();
  EXPECT_EQ(disk.live_pages(), 2u);
  disk.DeallocatePage(a);
  EXPECT_EQ(disk.live_pages(), 1u);
  disk.DeallocatePage(a);  // idempotent
  EXPECT_EQ(disk.live_pages(), 1u);
}

// ------------------------------------------------------------ BufferPool

TEST(BufferPoolTest, HitAvoidsDiskRead) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  pool.UnpinPage(page->first, true);
  uint64_t reads_before = meter.blocks_read();
  ASSERT_TRUE(pool.FetchPage(page->first).ok());
  pool.UnpinPage(page->first, false);
  EXPECT_EQ(meter.blocks_read(), reads_before);
  EXPECT_EQ(pool.hit_count(), 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 2);
  std::vector<page_id_t> ids;
  for (int i = 0; i < 3; i++) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    ids.push_back(page->first);
    pool.UnpinPage(page->first, true);
  }
  // Pool holds {1, 2}; page 0 was evicted (LRU).
  EXPECT_EQ(pool.resident_pages(), 2u);
  uint64_t misses = pool.miss_count();
  ASSERT_TRUE(pool.FetchPage(ids[0]).ok());
  pool.UnpinPage(ids[0], false);
  EXPECT_EQ(pool.miss_count(), misses + 1);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 2);
  auto a = pool.NewPage();
  auto b = pool.NewPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Both pinned: a third page cannot be placed.
  auto c = pool.NewPage();
  EXPECT_FALSE(c.ok());
  pool.UnpinPage(a->first, false);
  auto d = pool.NewPage();
  EXPECT_TRUE(d.ok());  // evicted a
}

TEST(BufferPoolTest, DirtyEvictionPersists) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 1);
  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  a->second->Insert(reinterpret_cast<const uint8_t*>("zz"), 2);
  pool.UnpinPage(a->first, true);
  // Force eviction.
  auto b = pool.NewPage();
  ASSERT_TRUE(b.ok());
  pool.UnpinPage(b->first, false);
  // Re-fetch a: contents must have survived the round trip.
  auto back = pool.FetchPage(a->first);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->slot_count(), 1);
  pool.UnpinPage(a->first, false);
}

TEST(BufferPoolTest, ResetEmptiesPoolAndFlushes) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 4);
  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  a->second->Insert(reinterpret_cast<const uint8_t*>("qq"), 2);
  pool.UnpinPage(a->first, true);
  pool.Reset();
  EXPECT_EQ(pool.resident_pages(), 0u);
  EXPECT_EQ(pool.hit_count(), 0u);
  auto back = pool.FetchPage(a->first);
  ASSERT_TRUE(back.ok());  // miss, read from disk
  EXPECT_EQ((*back)->slot_count(), 1);
  pool.UnpinPage(a->first, false);
  EXPECT_EQ(pool.miss_count(), 1u);
}

TEST(BufferPoolTest, PageGuardUnpinsOnDestruction) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 1);
  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  pool.UnpinPage(a->first, true);
  {
    auto p = pool.FetchPage(a->first);
    ASSERT_TRUE(p.ok());
    PageGuard guard(&pool, a->first, *p);
    // Pinned: a second page cannot be placed.
    EXPECT_FALSE(pool.NewPage().ok());
  }
  // Guard released the pin.
  EXPECT_TRUE(pool.NewPage().ok());
}

// Randomized consistency: pool-mediated contents always match a
// reference map, across evictions.
TEST(BufferPoolTest, RandomizedConsistencyAgainstReference) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 8);
  Rng rng(99);
  std::map<page_id_t, uint8_t> reference;
  std::vector<page_id_t> ids;
  for (int op = 0; op < 2000; op++) {
    if (ids.empty() || rng.NextBool(0.1)) {
      auto page = pool.NewPage();
      ASSERT_TRUE(page.ok());
      uint8_t tag = static_cast<uint8_t>(rng.NextRange(256));
      page->second->Init();
      page->second->Insert(&tag, 1);
      pool.UnpinPage(page->first, true);
      reference[page->first] = tag;
      ids.push_back(page->first);
      continue;
    }
    page_id_t id = ids[rng.NextRange(ids.size())];
    auto page = pool.FetchPage(id);
    ASSERT_TRUE(page.ok());
    uint16_t len;
    const uint8_t* rec = (*page)->Record(0, &len);
    ASSERT_EQ(len, 1);
    ASSERT_EQ(*rec, reference[id]) << "page " << id;
    if (rng.NextBool(0.3)) {
      uint8_t tag = static_cast<uint8_t>(rng.NextRange(256));
      (*page)->Init();
      (*page)->Insert(&tag, 1);
      reference[id] = tag;
      pool.UnpinPage(id, true);
    } else {
      pool.UnpinPage(id, false);
    }
  }
}

// -------------------------------------------------------------- HeapFile

TEST(HeapFileTest, AppendScanRoundTrip) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 16);
  HeapFile heap(&pool);
  for (int i = 0; i < 1000; i++) {
    Tuple t{Value(static_cast<int64_t>(i)), Value(i * 0.5)};
    ASSERT_TRUE(heap.Append(t).ok());
  }
  EXPECT_EQ(heap.tuple_count(), 1000u);
  EXPECT_GT(heap.page_count(), 1u);

  auto iter = heap.Scan();
  int64_t expect = 0;
  for (;;) {
    auto row = iter.Next();
    ASSERT_TRUE(row.ok());
    if (!row->has_value()) break;
    EXPECT_EQ((**row)[0].AsInt64(), expect++);
  }
  EXPECT_EQ(expect, 1000);
}

TEST(HeapFileTest, FetchByRid) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 16);
  HeapFile heap(&pool);
  std::vector<Rid> rids;
  for (int i = 0; i < 500; i++) {
    auto rid = heap.Append(Tuple{Value(static_cast<int64_t>(i))});
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  auto row = heap.Fetch(rids[321]);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].AsInt64(), 321);
}

TEST(HeapFileTest, DropReleasesPages) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 16);
  HeapFile heap(&pool);
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(heap.Append(Tuple{Value(static_cast<int64_t>(i))}).ok());
  }
  uint64_t live = disk.live_pages();
  EXPECT_GT(live, 0u);
  heap.Drop(&disk);
  EXPECT_EQ(disk.live_pages(), 0u);
  EXPECT_EQ(heap.tuple_count(), 0u);
}

TEST(HeapFileTest, ScanOfEmptyFile) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 4);
  HeapFile heap(&pool);
  auto iter = heap.Scan();
  auto row = iter.Next();
  ASSERT_TRUE(row.ok());
  EXPECT_FALSE(row->has_value());
}

TEST(HeapFileTest, ScanChargesIoOnColdPool) {
  CostMeter meter;
  DiskManager disk(&meter);
  BufferPool pool(&disk, 64);
  HeapFile heap(&pool);
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(
        heap.Append(Tuple{Value(static_cast<int64_t>(i)), Value(0.0)}).ok());
  }
  pool.FlushAll();
  pool.Reset();
  uint64_t reads_before = meter.blocks_read();
  auto iter = heap.Scan();
  for (;;) {
    auto row = iter.Next();
    ASSERT_TRUE(row.ok());
    if (!row->has_value()) break;
  }
  EXPECT_EQ(meter.blocks_read() - reads_before, heap.page_count());
}

}  // namespace
}  // namespace sqp
