#include "common/status.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table foo");
  EXPECT_EQ(s.ToString(), "NotFound: table foo");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.status().message(), "boom");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(*r);
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Status FailsThenPropagates(bool fail) {
  SQP_RETURN_IF_ERROR(fail ? Status::Cancelled("stop") : Status::OK());
  return Status::AlreadyExists("reached");
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kCancelled);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace sqp
