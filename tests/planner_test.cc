// Planner: access paths, join ordering, view rewriting decisions, and —
// most importantly — plan/execute equivalence properties.
#include "optimizer/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/rng.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::RsJoin;
using testutil::Sel;

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reset(testutil::MakeTwoTableDb(2000, 6000));
    ASSERT_TRUE(db_->CreateIndex("r", "r_a").ok());
    ASSERT_TRUE(db_->CreateIndex("r", "r_id").ok());
    ASSERT_TRUE(db_->CreateHistogram("r", "r_a").ok());
  }
  std::unique_ptr<Database> db_;
};

TEST_F(PlannerTest, SingleTableSeqScanWhenUnselective) {
  QueryGraph q;
  q.AddSelection(Sel("r", "r_a", CompareOp::kGe, Value(int64_t{1})));
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->kind, PlanNode::Kind::kSeqScan);
}

TEST_F(PlannerTest, SelectiveIndexedPredicateUsesIndexScan) {
  // Point lookup on a unique indexed column: the few heap fetches beat
  // a full scan. (Range predicates on the unclustered r_a index touch
  // ~every heap page and correctly lose to the sequential scan.)
  QueryGraph q;
  q.AddSelection(Sel("r", "r_id", CompareOp::kEq, Value(int64_t{5})));
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->kind, PlanNode::Kind::kIndexScan);
  EXPECT_EQ(plan->root->index_column, "r_id");
}

TEST_F(PlannerTest, UnindexedPredicateCannotUseIndex) {
  QueryGraph q;
  q.AddSelection(Sel("r", "r_b", CompareOp::kEq, Value(1.0)));
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->kind, PlanNode::Kind::kSeqScan);
}

TEST_F(PlannerTest, JoinProducesHashJoin) {
  QueryGraph q;
  q.AddJoin(RsJoin());
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->kind, PlanNode::Kind::kHashJoin);
  ASSERT_EQ(plan->root->join_columns.size(), 1u);
  EXPECT_GT(plan->est_rows, 0);
  EXPECT_GT(plan->est_cost, 0);
}

TEST_F(PlannerTest, DisconnectedGraphFallsBackToCrossProduct) {
  QueryGraph q;
  q.AddRelation("r");
  q.AddRelation("s");
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->kind, PlanNode::Kind::kNestedLoopJoin);
  EXPECT_TRUE(plan->root->join_columns.empty());
}

TEST_F(PlannerTest, EstimatesShrinkWithMorePredicates) {
  QueryGraph q1, q2;
  q1.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{50})));
  q2.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{50})));
  q2.AddSelection(Sel("r", "r_b", CompareOp::kLt, Value(500.0)));
  auto p1 = db_->planner().Plan(q1);
  auto p2 = db_->planner().Plan(q2);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_LT(p2->est_rows, p1->est_rows);
}

TEST_F(PlannerTest, ProjectionsWireThroughBuild) {
  QueryGraph q;
  q.AddJoin(RsJoin());
  q.SetProjections({"r_s", "s_c"});
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  auto exec = db_->planner().Build(*plan, &db_->catalog(),
                                   &db_->buffer_pool(), &db_->meter());
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ((*exec)->output_schema().size(), 2u);
  EXPECT_EQ((*exec)->output_schema().column(0).name, "r_s");
}

TEST_F(PlannerTest, UnknownProjectionFailsBuild) {
  QueryGraph q;
  q.AddRelation("r");
  q.SetProjections({"nope"});
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  auto exec = db_->planner().Build(*plan, &db_->catalog(),
                                   &db_->buffer_pool(), &db_->meter());
  EXPECT_FALSE(exec.ok());
}

TEST_F(PlannerTest, UnknownTableFailsPlan) {
  QueryGraph q;
  q.AddRelation("missing");
  EXPECT_FALSE(db_->planner().Plan(q).ok());
}

TEST_F(PlannerTest, ExplainMentionsOperatorsAndViews) {
  QueryGraph q;
  q.AddJoin(RsJoin());
  q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{10})));
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  std::string text = plan->Explain();
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("rows="), std::string::npos);
}

// ----------------------------------------------------- view interactions

class PlannerViewTest : public PlannerTest {
 protected:
  void SetUp() override {
    PlannerTest::SetUp();
    // Materialize σ(r_a < 20) and the full r⋈s join.
    QueryGraph sel;
    sel.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{20})));
    ASSERT_TRUE(db_->Materialize(sel, "v_sel").ok());
    sel_def_ = sel;
    QueryGraph join;
    join.AddJoin(RsJoin());
    ASSERT_TRUE(db_->Materialize(join, "v_join").ok());
    join_def_ = join;
  }
  QueryGraph sel_def_, join_def_;
};

TEST_F(PlannerViewTest, ForcedModeUsesApplicableView) {
  QueryGraph q = sel_def_;
  q.AddSelection(Sel("r", "r_b", CompareOp::kLt, Value(100.0)));
  auto plan = db_->planner().Plan(q, &db_->views(), ViewMode::kForced);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->views_used.size(), 1u);
  EXPECT_EQ(plan->views_used[0], "v_sel");
  // The residual predicate must be applied on the view scan.
  EXPECT_EQ(plan->root->table, "v_sel");
  ASSERT_EQ(plan->root->predicates.size(), 1u);
  EXPECT_EQ(plan->root->predicates[0].column, "r_b");
}

TEST_F(PlannerViewTest, NoneModeIgnoresViews) {
  auto plan = db_->planner().Plan(sel_def_, &db_->views(), ViewMode::kNone);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->views_used.empty());
}

TEST_F(PlannerViewTest, ViewNotApplicableWithoutContainment) {
  QueryGraph q;
  q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{21})));
  auto plan = db_->planner().Plan(q, &db_->views(), ViewMode::kForced);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->views_used.empty());  // constant differs
}

TEST_F(PlannerViewTest, CostBasedPicksCheaperOption) {
  // Scanning the small selection view must beat the base scan.
  auto plan =
      db_->planner().Plan(sel_def_, &db_->views(), ViewMode::kCostBased);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->views_used.size(), 1u);
}

TEST_F(PlannerViewTest, ForcedModePicksCheapestCover) {
  // Two candidate covers exist: the wide v_join (covers both relations)
  // and the tiny v_sel (covers r; the join to s remains). Forced mode
  // must use views, and must pick whichever cover costs less — computed
  // here by planning each cover in isolation.
  QueryGraph q = join_def_.Union(sel_def_);
  auto plan = db_->planner().Plan(q, &db_->views(), ViewMode::kForced);
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->views_used.empty());

  auto plan_with_only = [&](const std::string& view) {
    ViewRegistry registry;
    registry.Register(*db_->views().Get(view));
    auto p = db_->planner().Plan(q, &registry, ViewMode::kForced);
    EXPECT_TRUE(p.ok());
    return p->est_cost;
  };
  double best_single =
      std::min(plan_with_only("v_join"), plan_with_only("v_sel"));
  EXPECT_LE(plan->est_cost, best_single + 1e-9);
}

// ------------------------------------- equivalence property (randomized)

// The key correctness property behind speculation: a query rewritten to
// use materialized views returns exactly the same multiset of rows as
// the unrewritten plan.
class PlanEquivalence : public ::testing::TestWithParam<uint64_t> {};

std::multiset<std::string> Fingerprint(const std::vector<Tuple>& rows,
                                       const Schema& schema,
                                       const std::vector<std::string>& cols) {
  std::multiset<std::string> out;
  for (const auto& row : rows) {
    std::string key;
    for (const auto& name : cols) {
      auto idx = schema.ColumnIndex(name);
      key += row[*idx].ToString();
      key += "|";
    }
    out.insert(std::move(key));
  }
  return out;
}

TEST_P(PlanEquivalence, RewrittenPlansReturnIdenticalRows) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(500, 1500));
  Rng rng(GetParam());

  // Random view: selection on r, or the join, or join+selection.
  for (int round = 0; round < 6; round++) {
    QueryGraph view_def;
    int64_t cut = rng.NextInt(10, 90);
    bool with_join = rng.NextBool(0.5);
    if (with_join) view_def.AddJoin(RsJoin());
    if (!with_join || rng.NextBool(0.5)) {
      view_def.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(cut)));
    }
    std::string view_name = "v_" + std::to_string(round);
    ASSERT_TRUE(db->Materialize(view_def, view_name).ok());

    // Random query containing the view definition.
    QueryGraph q = view_def;
    q.AddJoin(RsJoin());
    if (rng.NextBool(0.7)) {
      q.AddSelection(
          Sel("s", "s_c", CompareOp::kLe, Value(rng.NextInt(5, 45))));
    }
    if (rng.NextBool(0.4)) {
      q.AddSelection(Sel("r", "r_b", CompareOp::kGt,
                         Value(rng.NextDouble(100, 900))));
    }

    ExecuteOptions base_opts;
    base_opts.keep_rows = true;
    base_opts.view_mode = ViewMode::kNone;
    auto base = db->Execute(q, base_opts);
    ASSERT_TRUE(base.ok());

    ExecuteOptions forced_opts;
    forced_opts.keep_rows = true;
    forced_opts.view_mode = ViewMode::kForced;
    auto forced = db->Execute(q, forced_opts);
    ASSERT_TRUE(forced.ok());
    ASSERT_FALSE(forced->views_used.empty());

    ASSERT_EQ(base->row_count, forced->row_count)
        << "round " << round << " query " << q.ToSql();
    // Compare row contents on the base-relation columns.
    std::vector<std::string> cols = {"r_id", "r_a", "s_id", "s_c"};
    EXPECT_EQ(Fingerprint(base->rows, base->schema, cols),
              Fingerprint(forced->rows, forced->schema, cols));

    ASSERT_TRUE(db->DropTable(view_name).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalence,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------- BETWEEN range-pair fusion

TEST_F(PlannerTest, RangePairCondensesToSingleBetweenTerm) {
  // r_b is unindexed, so the scan stays sequential and the pair fuses.
  QueryGraph q;
  q.AddSelection(Sel("r", "r_b", CompareOp::kGt, Value(200.0)));
  q.AddSelection(Sel("r", "r_b", CompareOp::kLt, Value(700.0)));
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->root->kind, PlanNode::Kind::kSeqScan);
  ASSERT_EQ(plan->root->fused_predicates.size(), 1u);
  EXPECT_TRUE(plan->root->predicates.empty());
  const auto& [lo, hi] = plan->root->fused_predicates[0];
  EXPECT_EQ(lo.op, CompareOp::kGt);
  EXPECT_EQ(hi.op, CompareOp::kLt);
  EXPECT_NE(plan->Explain().find("between("), std::string::npos)
      << plan->Explain();

  // The fused term filters exactly like the two separate predicates.
  ExecuteOptions opts;
  opts.keep_rows = true;
  auto fused = db_->Execute(q, opts);
  ASSERT_TRUE(fused.ok());
  QueryGraph all;
  all.AddRelation("r");
  auto baseline = db_->Execute(all, opts);
  ASSERT_TRUE(baseline.ok());
  auto b_idx = baseline->schema.ColumnIndex("r_b");
  ASSERT_TRUE(b_idx.has_value());
  uint64_t expect = 0;
  for (const Tuple& row : baseline->rows) {
    double b = row[*b_idx].AsDouble();
    if (b > 200.0 && b < 700.0) expect++;
  }
  EXPECT_GT(expect, 0u);
  EXPECT_EQ(fused->row_count, expect);
  for (const Tuple& row : fused->rows) {
    double b = row[*b_idx].AsDouble();
    EXPECT_GT(b, 200.0);
    EXPECT_LT(b, 700.0);
  }
}

TEST_F(PlannerTest, InclusiveBoundsAlsoFuse) {
  QueryGraph q;
  q.AddSelection(Sel("r", "r_b", CompareOp::kLe, Value(700.0)));
  q.AddSelection(Sel("r", "r_b", CompareOp::kGe, Value(200.0)));
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->root->fused_predicates.size(), 1u);
  const auto& [lo, hi] = plan->root->fused_predicates[0];
  EXPECT_EQ(lo.op, CompareOp::kGe);  // lower bound first, either order
  EXPECT_EQ(hi.op, CompareOp::kLe);
}

TEST_F(PlannerTest, SameDirectionBoundsDoNotFuse) {
  QueryGraph q;
  q.AddSelection(Sel("r", "r_b", CompareOp::kGt, Value(200.0)));
  q.AddSelection(Sel("r", "r_b", CompareOp::kGe, Value(300.0)));
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->root->fused_predicates.empty());
  EXPECT_EQ(plan->root->predicates.size(), 2u);
}

TEST_F(PlannerTest, DifferentColumnsDoNotFuse) {
  QueryGraph q;
  q.AddSelection(Sel("r", "r_b", CompareOp::kGt, Value(200.0)));
  q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{90})));
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->root->fused_predicates.empty());
  EXPECT_EQ(plan->root->predicates.size(), 2u);
}

TEST_F(PlannerTest, IndexScanKeepsResidualRangePairUnfused) {
  // A selective point lookup wins the access-path race; fusion only
  // applies to sequential scans, so the residual pair stays as two
  // predicates.
  QueryGraph q;
  q.AddSelection(Sel("r", "r_id", CompareOp::kEq, Value(int64_t{5})));
  q.AddSelection(Sel("r", "r_b", CompareOp::kGt, Value(200.0)));
  q.AddSelection(Sel("r", "r_b", CompareOp::kLt, Value(700.0)));
  auto plan = db_->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->root->kind, PlanNode::Kind::kIndexScan);
  EXPECT_TRUE(plan->root->fused_predicates.empty());
  EXPECT_EQ(plan->root->predicates.size(), 2u);
}

}  // namespace
}  // namespace sqp
