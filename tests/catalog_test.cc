// Catalog and schema metadata.
#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "catalog/schema.h"
#include "storage/disk_manager.h"

namespace sqp {
namespace {

TEST(SchemaTest, ColumnLookup) {
  Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kString}});
  EXPECT_EQ(schema.size(), 2u);
  EXPECT_EQ(*schema.ColumnIndex("b"), 1u);
  EXPECT_FALSE(schema.ColumnIndex("c").has_value());
  EXPECT_TRUE(schema.HasColumn("a"));
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema a({{"x", TypeId::kInt64}});
  Schema b({{"y", TypeId::kDouble}, {"z", TypeId::kString}});
  Schema c = a.Concat(b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.column(0).name, "x");
  EXPECT_EQ(c.column(2).name, "z");
}

TEST(SchemaTest, ProjectSelectsByName) {
  Schema schema({{"a", TypeId::kInt64},
                 {"b", TypeId::kDouble},
                 {"c", TypeId::kString}});
  Schema projected = schema.Project({"c", "a"});
  ASSERT_EQ(projected.size(), 2u);
  EXPECT_EQ(projected.column(0).name, "c");
  EXPECT_EQ(projected.column(1).name, "a");
}

TEST(SchemaTest, WidthAndToString) {
  Schema schema({{"a", TypeId::kInt64}, {"s", TypeId::kString}});
  EXPECT_GT(schema.EstimatedTupleWidth(), 16u);
  std::string text = schema.ToString();
  EXPECT_NE(text.find("a INT"), std::string::npos);
  EXPECT_NE(text.find("s STRING"), std::string::npos);
}

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest()
      : meter_(), disk_(&meter_), pool_(&disk_, 64), catalog_(&disk_, &pool_) {}

  void FillTable(const std::string& name, int rows) {
    TableInfo* info = catalog_.GetTable(name);
    ASSERT_NE(info, nullptr);
    TableStats stats;
    stats.Begin(info->schema);
    for (int i = 0; i < rows; i++) {
      Tuple t{Value(static_cast<int64_t>(i)),
              Value(static_cast<int64_t>(i % 7))};
      stats.Observe(t);
      ASSERT_TRUE(info->heap->Append(t).ok());
    }
    stats.Finish(info->heap->page_count());
    info->stats = std::move(stats);
  }

  CostMeter meter_;
  DiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  Schema schema_{{{"id", TypeId::kInt64}, {"v", TypeId::kInt64}}};
};

TEST_F(CatalogTest, CreateGetDrop) {
  ASSERT_TRUE(catalog_.CreateTable("t", schema_).ok());
  EXPECT_NE(catalog_.GetTable("t"), nullptr);
  EXPECT_FALSE(catalog_.CreateTable("t", schema_).ok());
  EXPECT_TRUE(catalog_.DropTable("t").ok());
  EXPECT_EQ(catalog_.GetTable("t"), nullptr);
  EXPECT_FALSE(catalog_.DropTable("t").ok());
}

TEST_F(CatalogTest, IndexBuildAndLookup) {
  ASSERT_TRUE(catalog_.CreateTable("t", schema_).ok());
  FillTable("t", 500);
  auto index = catalog_.CreateIndex("t", "v");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->size(), 500u);
  EXPECT_TRUE((*index)->CheckInvariants());
  EXPECT_TRUE(catalog_.HasIndex("t", "v"));
  EXPECT_FALSE(catalog_.HasIndex("t", "id"));

  // Index entries point at real heap tuples.
  auto rids = (*index)->RangeScan(KeyRange::Exactly(Value(int64_t{3})));
  EXPECT_EQ(rids.size(), 71u);  // i % 7 == 3 for i in [0, 500)
  TableInfo* info = catalog_.GetTable("t");
  for (const Rid& rid : rids) {
    auto row = info->heap->Fetch(rid);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ((*row)[1].AsInt64(), 3);
  }

  EXPECT_FALSE(catalog_.CreateIndex("t", "v").ok());       // duplicate
  EXPECT_FALSE(catalog_.CreateIndex("t", "nope").ok());    // no column
  EXPECT_FALSE(catalog_.CreateIndex("missing", "v").ok());  // no table
}

TEST_F(CatalogTest, HistogramBuildAndDrop) {
  ASSERT_TRUE(catalog_.CreateTable("t", schema_).ok());
  FillTable("t", 700);
  ASSERT_TRUE(catalog_.CreateHistogram("t", "v").ok());
  const Histogram* hist = catalog_.GetHistogram("t", "v");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->row_count(), 700u);
  EXPECT_EQ(hist->distinct_count(), 7u);
  EXPECT_TRUE(catalog_.DropHistogram("t", "v").ok());
  EXPECT_EQ(catalog_.GetHistogram("t", "v"), nullptr);
  EXPECT_FALSE(catalog_.DropHistogram("t", "v").ok());
}

TEST_F(CatalogTest, DropTableCascadesToIndexesAndHistograms) {
  ASSERT_TRUE(catalog_.CreateTable("t", schema_).ok());
  FillTable("t", 100);
  ASSERT_TRUE(catalog_.CreateIndex("t", "v").ok());
  ASSERT_TRUE(catalog_.CreateHistogram("t", "v").ok());
  uint64_t live_before = disk_.live_pages();
  EXPECT_GT(live_before, 0u);
  ASSERT_TRUE(catalog_.DropTable("t").ok());
  EXPECT_EQ(disk_.live_pages(), 0u);
  EXPECT_FALSE(catalog_.HasIndex("t", "v"));
  EXPECT_EQ(catalog_.GetHistogram("t", "v"), nullptr);
}

TEST_F(CatalogTest, AnalyzeRecomputesStats) {
  ASSERT_TRUE(catalog_.CreateTable("t", schema_).ok());
  TableInfo* info = catalog_.GetTable("t");
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(
        info->heap->Append(Tuple{Value(int64_t{i}), Value(int64_t{1})}).ok());
  }
  EXPECT_EQ(info->stats.row_count(), 0u);  // not yet analyzed
  ASSERT_TRUE(catalog_.AnalyzeTable("t").ok());
  EXPECT_EQ(info->stats.row_count(), 50u);
  EXPECT_EQ(info->stats.column(0).max->AsInt64(), 49);
  EXPECT_FALSE(catalog_.AnalyzeTable("missing").ok());
}

TEST_F(CatalogTest, MaterializedTableNames) {
  ASSERT_TRUE(catalog_.CreateTable("base", schema_).ok());
  ASSERT_TRUE(catalog_.CreateTable("mv", schema_, true).ok());
  auto names = catalog_.MaterializedTableNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "mv");
  EXPECT_EQ(catalog_.TableNames().size(), 2u);
}

}  // namespace
}  // namespace sqp
