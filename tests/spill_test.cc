// Grace-hash-join spill model: correctness is unchanged, costs grow,
// the planner anticipates the spill, and the DP avoids it when a
// selective build side exists.
#include <gtest/gtest.h>

#include <memory>

#include "optimizer/planner.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::RsJoin;
using testutil::Sel;

std::unique_ptr<Database> MakeDb(uint64_t join_memory_pages) {
  DatabaseOptions options;
  options.buffer_pool_pages = 256;
  options.cost.hash_join_memory_pages = join_memory_pages;
  auto db = std::make_unique<Database>(options);

  Schema r_schema({{"r_id", TypeId::kInt64},
                   {"r_a", TypeId::kInt64},
                   {"r_pad", TypeId::kString}});
  Schema s_schema({{"s_id", TypeId::kInt64}, {"s_rid", TypeId::kInt64}});
  EXPECT_TRUE(db->CreateTable("r", r_schema).ok());
  EXPECT_TRUE(db->CreateTable("s", s_schema).ok());
  Rng rng(3);
  std::vector<Tuple> r_rows;
  for (int i = 0; i < 3000; i++) {
    r_rows.push_back(Tuple{Value(static_cast<int64_t>(i)),
                           Value(rng.NextInt(0, 99)),
                           Value(std::string(60, 'p'))});
  }
  EXPECT_TRUE(db->BulkLoad("r", r_rows).ok());
  std::vector<Tuple> s_rows;
  for (int i = 0; i < 6000; i++) {
    s_rows.push_back(
        Tuple{Value(static_cast<int64_t>(i)), Value(rng.NextInt(0, 2999))});
  }
  EXPECT_TRUE(db->BulkLoad("s", s_rows).ok());
  return db;
}

QueryGraph JoinQuery() {
  QueryGraph q;
  q.AddJoin(testutil::Join("r", "r_id", "s", "s_rid"));
  return q;
}

TEST(SpillTest, SpillChargesExtraIoButPreservesResults) {
  auto roomy = MakeDb(/*join_memory_pages=*/4096);
  auto tight = MakeDb(/*join_memory_pages=*/2);

  ExecuteOptions opts;
  roomy->ColdStart();
  auto fast = roomy->Execute(JoinQuery(), opts);
  ASSERT_TRUE(fast.ok());
  tight->ColdStart();
  auto slow = tight->Execute(JoinQuery(), opts);
  ASSERT_TRUE(slow.ok());

  EXPECT_EQ(fast->row_count, slow->row_count);
  EXPECT_GT(slow->seconds, fast->seconds * 1.5);
  EXPECT_GT(slow->blocks, fast->blocks);
}

TEST(SpillTest, PlannerEstimateAnticipatesSpill) {
  auto roomy = MakeDb(4096);
  auto tight = MakeDb(2);
  auto cost_roomy = roomy->EstimateCost(JoinQuery());
  auto cost_tight = tight->EstimateCost(JoinQuery());
  ASSERT_TRUE(cost_roomy.ok());
  ASSERT_TRUE(cost_tight.ok());
  EXPECT_GT(*cost_tight, *cost_roomy * 1.3);
}

TEST(SpillTest, DpBuildsOnSelectiveSideToAvoidSpill) {
  // With a selective predicate on r, the DP should accumulate σ(r)
  // first (small build side, no spill) rather than building on s.
  auto tight = MakeDb(/*join_memory_pages=*/8);
  QueryGraph q = JoinQuery();
  q.AddSelection(Sel("r", "r_a", CompareOp::kEq, Value(int64_t{7})));
  auto plan = tight->planner().Plan(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->root->kind, PlanNode::Kind::kHashJoin);
  // Left (build) child scans r with the predicate pushed down.
  ASSERT_NE(plan->root->left, nullptr);
  EXPECT_EQ(plan->root->left->table, "r");

  // And the executed cost is far below the unselective join's.
  tight->ColdStart();
  auto selective = tight->Execute(q);
  tight->ColdStart();
  auto full = tight->Execute(JoinQuery());
  ASSERT_TRUE(selective.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_LT(selective->seconds, full->seconds * 0.8);
}

TEST(SpillTest, SpillMakesMaterializedViewsAttractive) {
  // The Figure 6 mechanism: once the join spills, scanning its
  // materialization becomes the cheaper plan cost-based.
  auto tight = MakeDb(/*join_memory_pages=*/2);
  ASSERT_TRUE(tight->Materialize(JoinQuery(), "v").ok());
  ExecuteOptions opts;
  opts.view_mode = ViewMode::kCostBased;
  tight->ColdStart();
  auto result = tight->Execute(JoinQuery(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->views_used.empty());

  auto roomy = MakeDb(4096);
  ASSERT_TRUE(roomy->Materialize(JoinQuery(), "v").ok());
  roomy->ColdStart();
  auto unspilled = roomy->Execute(JoinQuery(), opts);
  ASSERT_TRUE(unspilled.ok());
  // Without the spill, the (wide) view is not obviously better; either
  // choice is fine, but results must match.
  EXPECT_EQ(unspilled->row_count, result->row_count);
}

}  // namespace
}  // namespace sqp
