// Sharded storage tier and node-loss survival (DESIGN.md §12): per-node
// page-id namespaces, the sharded router's replication and failover,
// the raft-style replicated manifest (quorum commit, rollback,
// election, catch-up), database-level single-node-loss recovery, and a
// randomized kill-one-node chaos harness asserting the invariants:
// committed results bit-identical to a fault-free run, zero orphan
// pages on every surviving node, manifest recovered from a quorum.
#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "db/database.h"
#include "db/replicated_manifest.h"
#include "sim/sim_server.h"
#include "speculation/engine.h"
#include "storage/sharded_router.h"
#include "test_util.h"
#include "trace/trace.h"

namespace sqp {
namespace {

using testutil::RsJoin;
using testutil::Sel;

// ------------------------------------------------------ page-id scheme

TEST(PageIdTest, NodeTagRoundTripsAndNodeZeroIsUnchanged) {
  EXPECT_EQ(MakePageId(0, 42), 42u);  // single-node ids stay numeric
  page_id_t id = MakePageId(3, 42);
  EXPECT_EQ(PageNode(id), 3u);
  EXPECT_EQ(PageLocal(id), 42u);
  EXPECT_NE(id, 42u);
  // The invalid id decodes to a node no router can own.
  EXPECT_EQ(PageNode(kInvalidPageId), kMaxStorageNodes);
}

// --------------------------------------------- per-node disk namespace

class NodeDiskTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
  CostMeter meter_;
};

TEST_F(NodeDiskTest, FaultNamespaceIsPerNode) {
  DiskManager disk0(&meter_);
  DiskManager disk2(&meter_, "node2.disk", "storage.node2.disk", 2);
  auto a = disk0.AllocatePage();
  auto b = disk2.AllocatePage();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(PageNode(*a), 0u);
  EXPECT_EQ(PageNode(*b), 2u);
  // A node's disk refuses ids tagged with another node.
  Page page;
  page.Init();
  EXPECT_EQ(disk2.WritePage(*a, page).code(), StatusCode::kInvalidArgument);

  // Arming node2's namespace leaves node0 untouched.
  FaultSpec spec = FaultSpec::EveryNth(1);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("node2.disk.write", spec);
  EXPECT_TRUE(disk0.WritePage(*a, page).ok());
  EXPECT_EQ(disk2.WritePage(*b, page).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(NodeDiskTest, SyncDelayFaultChargesTimeButNeverFails) {
  DiskManager disk(&meter_);
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  Page page;
  page.Init();

  ASSERT_TRUE(disk.WritePage(*id, page).ok());
  double before = meter_.ElapsedSeconds();
  ASSERT_TRUE(disk.Sync().ok());
  const double clean_sync = meter_.ElapsedSeconds() - before;

  FaultSpec spec = FaultSpec::EveryNth(1);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("disk.sync_delay", spec);
  ASSERT_TRUE(disk.WritePage(*id, page).ok());
  before = meter_.ElapsedSeconds();
  ASSERT_TRUE(disk.Sync().ok());  // slow, not failed
  EXPECT_GT(meter_.ElapsedSeconds() - before, clean_sync);
}

// ------------------------------------------------------ sharded router

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  Page* Filled(const char* text) {
    scratch_.Init();
    scratch_.Insert(reinterpret_cast<const uint8_t*>(text),
                    static_cast<uint16_t>(std::string(text).size()));
    return &scratch_;
  }

  CostMeter meter_;
  Page scratch_;
};

TEST_F(RouterTest, SingleNodeIsAPassThroughWithLegacyIds) {
  ShardedStorageRouter router(&meter_, 1);
  EXPECT_EQ(router.node_count(), 1u);
  auto a = router.AllocatePage();
  auto b = router.AllocatePage();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  ASSERT_TRUE(router.WritePage(*a, *Filled("x")).ok());
  EXPECT_EQ(router.OrphanPhysicalPages(), 0u);
}

TEST_F(RouterTest, ReplicatedPageSurvivesPrimaryNodeLoss) {
  ShardedStorageRouter router(&meter_, 4);
  PageAllocOptions options;
  options.replicated = true;
  options.node_hint = 1;
  auto id = router.AllocatePage(options);
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(PageNode(*id), 1u);
  ASSERT_TRUE(router.WritePage(*id, *Filled("replicated")).ok());
  ASSERT_TRUE(router.Sync().ok());

  router.KillNode(1);
  EXPECT_EQ(router.alive_nodes(), 3u);
  EXPECT_TRUE(router.PageAvailable(*id));
  Page out;
  out.Init();
  ASSERT_TRUE(router.ReadPage(*id, &out).ok());  // served by the shadow
  EXPECT_EQ(out.slot_count(), 1);
  EXPECT_GE(router.replica_reads(), 1u);

  // Writes keep working, degraded to the surviving copy.
  ASSERT_TRUE(router.WritePage(*id, *Filled("degraded")).ok());
  EXPECT_GE(router.degraded_writes(), 1u);
  EXPECT_EQ(router.live_pages(), 1u);
  EXPECT_EQ(router.OrphanPhysicalPages(), 0u);
}

TEST_F(RouterTest, UnreplicatedPageDiesWithItsNode) {
  ShardedStorageRouter router(&meter_, 4);
  PageAllocOptions options;
  options.node_hint = 2;
  auto id = router.AllocatePage(options);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(router.WritePage(*id, *Filled("single-copy")).ok());
  ASSERT_TRUE(router.Sync().ok());

  router.KillNode(2);
  EXPECT_FALSE(router.PageAvailable(*id));
  EXPECT_EQ(router.live_pages(), 0u);
  Page out;
  out.Init();
  EXPECT_EQ(router.ReadPage(*id, &out).code(), StatusCode::kDataLoss);
  EXPECT_EQ(router.WritePage(*id, out).code(), StatusCode::kDataLoss);
  // Deallocation of the lost page still retires its metadata.
  EXPECT_TRUE(router.DeallocatePage(*id).ok());
  EXPECT_EQ(router.OrphanPhysicalPages(), 0u);
}

TEST_F(RouterTest, PartitionIsTransientAndRetryable) {
  ShardedStorageRouter router(&meter_, 4);
  PageAllocOptions options;
  options.node_hint = 0;
  auto id = router.AllocatePage(options);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(router.WritePage(*id, *Filled("v1")).ok());
  ASSERT_TRUE(router.Sync().ok());

  FaultSpec spec = FaultSpec::OneShot(1);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("node0.partition", spec);
  Status write = router.WritePage(*id, *Filled("v2"));
  // Transient primary unreachability fails the write (the shadow must
  // never advance past a primary that will come back) with the
  // retryable code...
  EXPECT_EQ(write.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(write.IsRetryable());
  EXPECT_EQ(router.degraded_writes(), 0u);
  // ...and the retry, after the partition heals, succeeds.
  EXPECT_TRUE(router.WritePage(*id, *Filled("v2")).ok());
}

TEST_F(RouterTest, BalancedReadsAlternateBetweenPrimaryAndShadow) {
  ShardedStorageRouter router(&meter_, 4);
  PageAllocOptions options;
  options.replicated = true;
  options.node_hint = 0;
  auto id = router.AllocatePage(options);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(router.WritePage(*id, *Filled("balanced")).ok());
  ASSERT_TRUE(router.Sync().ok());

  Page out;
  out.Init();
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(router.ReadPage(*id, &out).ok());
  }
  // Deterministic round-robin: primary, shadow, primary, shadow, ...
  EXPECT_EQ(router.reads_primary(), 3u);
  EXPECT_EQ(router.reads_shadow(), 3u);

  // Once the shadow's node dies, every read lands on the primary.
  router.KillNode(router.PageReplicaNode(*id));
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(router.ReadPage(*id, &out).ok());
  }
  EXPECT_EQ(router.reads_primary(), 7u);
  EXPECT_EQ(router.reads_shadow(), 3u);
}

TEST_F(RouterTest, ReadBalancingCanBeDisabled) {
  ShardedStorageRouter router(&meter_, 4, /*replication_factor=*/2,
                              /*balance_reads=*/false);
  PageAllocOptions options;
  options.replicated = true;
  options.node_hint = 0;
  auto id = router.AllocatePage(options);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(router.WritePage(*id, *Filled("primary only")).ok());
  ASSERT_TRUE(router.Sync().ok());

  Page out;
  out.Init();
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(router.ReadPage(*id, &out).ok());
  }
  EXPECT_EQ(router.reads_primary(), 6u);
  EXPECT_EQ(router.reads_shadow(), 0u);
}

TEST_F(RouterTest, TransientReadFaultOnPrimaryFailsOverToReplica) {
  ShardedStorageRouter router(&meter_, 4);
  PageAllocOptions options;
  options.replicated = true;
  options.node_hint = 0;
  auto id = router.AllocatePage(options);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(router.WritePage(*id, *Filled("both copies")).ok());
  ASSERT_TRUE(router.Sync().ok());

  FaultSpec spec = FaultSpec::OneShot(1);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("node0.disk.read", spec);
  Page out;
  out.Init();
  // The shadow holds the same synced bytes, so a flaky primary read is
  // absorbed instead of surfaced.
  ASSERT_TRUE(router.ReadPage(*id, &out).ok());
  EXPECT_EQ(out.slot_count(), 1);
  EXPECT_GE(router.replica_reads(), 1u);
}

// ------------------------------------------------- replicated manifest

ManifestRecord Rec(const std::string& table) {
  return ManifestRecord::CreateTable(table, Schema({{"x", TypeId::kInt64}}),
                                     false);
}

class ReplicatedManifestTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(ReplicatedManifestTest, SingleReplicaBehavesLikePlainManifest) {
  ReplicatedManifest manifest(1);
  EXPECT_EQ(manifest.quorum(), 1u);
  manifest.Append(Rec("t"));
  EXPECT_EQ(manifest.staged_count(), 1u);
  manifest.DropUncommitted();
  EXPECT_EQ(manifest.committed_count(), 0u);
  manifest.Append(Rec("t"));
  ASSERT_TRUE(manifest.Commit().ok());
  EXPECT_EQ(manifest.committed_count(), 1u);
  ASSERT_TRUE(manifest.RecoverFromQuorum().ok());
  EXPECT_EQ(manifest.committed_count(), 1u);
}

TEST_F(ReplicatedManifestTest, CommitReplicatesToEveryReachableFollower) {
  ReplicatedManifest manifest(4);
  EXPECT_EQ(manifest.quorum(), 3u);
  manifest.Append(Rec("a"));
  manifest.Append(Rec("b"));
  ASSERT_TRUE(manifest.Commit().ok());  // one entry, two records
  for (size_t k = 0; k < 4; k++) EXPECT_EQ(manifest.log_size(k), 1u);
  EXPECT_EQ(manifest.committed_count(), 2u);
}

TEST_F(ReplicatedManifestTest, LaggingFollowerIsCaughtUpNextCommit) {
  ReplicatedManifest manifest(4);
  FaultSpec miss = FaultSpec::OneShot(1);
  miss.only_in_region = false;
  FaultInjector::Global().Arm("node1.manifest.replicate", miss);
  manifest.Append(Rec("a"));
  ASSERT_TRUE(manifest.Commit().ok());  // 3/4 acks: 0, 2, 3
  EXPECT_EQ(manifest.log_size(1), 0u);
  manifest.Append(Rec("b"));
  ASSERT_TRUE(manifest.Commit().ok());  // catch-up precedes the append
  EXPECT_EQ(manifest.log_size(1), 2u);
}

TEST_F(ReplicatedManifestTest, FailedQuorumRollsBackEverywhere) {
  ReplicatedManifest manifest(4);
  FaultSpec miss = FaultSpec::EveryNth(1);
  miss.only_in_region = false;
  FaultInjector::Global().Arm("node1.manifest.replicate", miss);
  FaultInjector::Global().Arm("node2.manifest.replicate", miss);
  manifest.Append(Rec("doomed"));
  Status commit = manifest.Commit();  // 2/4 acks < quorum 3
  EXPECT_EQ(commit.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(commit.IsRetryable());
  EXPECT_EQ(manifest.quorum_failures(), 1u);
  // The entry survives on no log — a later election cannot resurrect an
  // operation the caller was told failed.
  for (size_t k = 0; k < 4; k++) EXPECT_EQ(manifest.log_size(k), 0u);
  EXPECT_EQ(manifest.committed_count(), 0u);
  EXPECT_EQ(manifest.staged_count(), 0u);

  // The operation can simply be retried once replication heals.
  FaultInjector::Global().Reset();
  manifest.Append(Rec("retried"));
  ASSERT_TRUE(manifest.Commit().ok());
  EXPECT_EQ(manifest.committed_count(), 1u);
}

TEST_F(ReplicatedManifestTest, LeaderDeathElectsSurvivorAndBumpsTerm) {
  ReplicatedManifest manifest(4);
  manifest.Append(Rec("a"));
  ASSERT_TRUE(manifest.Commit().ok());
  const uint64_t term_before = manifest.term();
  ASSERT_EQ(manifest.leader(), 0u);

  manifest.KillReplica(0);
  manifest.Append(Rec("b"));
  ASSERT_TRUE(manifest.Commit().ok());  // fail-over inside Commit
  EXPECT_NE(manifest.leader(), 0u);
  EXPECT_GT(manifest.term(), term_before);
  EXPECT_EQ(manifest.committed_count(), 2u);
}

TEST_F(ReplicatedManifestTest, RecoversFromQuorumAfterNodeLoss) {
  ReplicatedManifest manifest(4);
  // Let follower 3 lag one entry so recovery has healing to do.
  manifest.Append(Rec("a"));
  ASSERT_TRUE(manifest.Commit().ok());
  FaultSpec miss = FaultSpec::OneShot(1);
  miss.only_in_region = false;
  FaultInjector::Global().Arm("node3.manifest.replicate", miss);
  manifest.Append(Rec("b"));
  ASSERT_TRUE(manifest.Commit().ok());
  ASSERT_EQ(manifest.log_size(3), 1u);

  manifest.KillReplica(0);  // the leader dies
  ASSERT_TRUE(manifest.RecoverFromQuorum().ok());
  EXPECT_NE(manifest.leader(), 0u);
  EXPECT_EQ(manifest.committed_count(), 2u);  // nothing committed is lost
  EXPECT_EQ(manifest.log_size(3), 2u);        // the laggard is healed

  // Losing a second node leaves 2 < quorum 3: the manifest can no
  // longer be trusted.
  manifest.KillReplica(1);
  EXPECT_EQ(manifest.RecoverFromQuorum().code(), StatusCode::kDataLoss);
}

// --------------------------------------------- database-level recovery

/// MakeTwoTableDb on a 4-node sharded tier (quorum 3).
Database* MakeShardedDb(size_t rows_r, size_t rows_s, uint64_t seed = 7) {
  DatabaseOptions options;
  options.buffer_pool_pages = 256;
  options.storage_nodes = 4;

  auto* db = new Database(options);
  Schema r_schema({{"r_id", TypeId::kInt64},
                   {"r_a", TypeId::kInt64},
                   {"r_b", TypeId::kDouble},
                   {"r_s", TypeId::kString}});
  Schema s_schema({{"s_id", TypeId::kInt64},
                   {"s_rid", TypeId::kInt64},
                   {"s_c", TypeId::kInt64}});
  if (!db->CreateTable("r", r_schema).ok()) return db;
  if (!db->CreateTable("s", s_schema).ok()) return db;

  Rng rng(seed);
  const char* strs[] = {"alpha", "beta", "gamma"};
  std::vector<Tuple> r_rows;
  for (size_t i = 0; i < rows_r; i++) {
    r_rows.push_back(Tuple{Value(static_cast<int64_t>(i)),
                           Value(rng.NextInt(0, 99)),
                           Value(rng.NextDouble(0, 1000)),
                           Value(std::string(strs[i % 3]))});
  }
  (void)db->BulkLoad("r", r_rows);
  std::vector<Tuple> s_rows;
  for (size_t i = 0; i < rows_s; i++) {
    s_rows.push_back(Tuple{
        Value(static_cast<int64_t>(i)),
        Value(rng.NextInt(0, static_cast<int64_t>(rows_r) - 1)),
        Value(rng.NextInt(0, 49))});
  }
  (void)db->BulkLoad("s", s_rows);
  return db;
}

uint64_t CatalogPages(const Database& db) {
  uint64_t total = 0;
  for (const auto& name : db.catalog().TableNames()) {
    total += db.catalog().GetTable(name)->heap->page_count();
  }
  return total;
}

std::vector<std::string> RowSet(const QueryResult& result) {
  std::vector<size_t> order(result.schema.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.schema.column(a).name < result.schema.column(b).name;
  });
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Tuple& tuple : result.rows) {
    std::string s;
    for (size_t i : order) {
      s += result.schema.column(i).name;
      s += '=';
      s += tuple[i].ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class NodeLossDbTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  QueryGraph JoinQuery() {
    QueryGraph q;
    q.AddJoin(RsJoin());
    q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{40})));
    return q;
  }
};

TEST_F(NodeLossDbTest, BaseTablesAreShardedAcrossEveryNode) {
  std::unique_ptr<Database> db(MakeShardedDb(400, 1200));
  std::set<uint32_t> nodes_used;
  for (const auto& name : db->catalog().TableNames()) {
    for (page_id_t page : db->catalog().GetTable(name)->heap->pages()) {
      nodes_used.insert(PageNode(page));
    }
  }
  EXPECT_EQ(nodes_used.size(), 4u);
  EXPECT_EQ(db->storage().OrphanPhysicalPages(), 0u);
  EXPECT_EQ(db->manifest().replica_count(), 4u);
}

TEST_F(NodeLossDbTest, SurvivesLosingAnySingleNodeBitIdentically) {
  for (size_t victim = 0; victim < 4; victim++) {
    SCOPED_TRACE("killing node " + std::to_string(victim));
    std::unique_ptr<Database> db(MakeShardedDb(300, 900));
    ExecuteOptions exec;
    exec.keep_rows = true;
    auto before = db->Execute(JoinQuery(), exec);
    ASSERT_TRUE(before.ok());
    const uint64_t pages_before = db->disk_manager().live_pages();

    db->KillNode(victim);
    ASSERT_TRUE(db->Reopen().ok());

    const RecoveryStats& stats = db->last_recovery();
    EXPECT_EQ(stats.nodes_lost, 1u);
    EXPECT_EQ(stats.tables_recovered, 2u);
    EXPECT_EQ(stats.orphan_pages_per_node_audit, 0u);
    EXPECT_EQ(db->manifest().alive_replicas(), 3u);
    EXPECT_EQ(db->disk_manager().live_pages(), pages_before);
    EXPECT_EQ(db->disk_manager().live_pages(), CatalogPages(*db));

    auto after = db->Execute(JoinQuery(), exec);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(RowSet(*after), RowSet(*before));
  }
}

TEST_F(NodeLossDbTest, MatviewStaysOnOneNodeAndDiesWithIt) {
  std::unique_ptr<Database> db(MakeShardedDb(400, 1200));
  const uint64_t base_pages = db->disk_manager().live_pages();
  ASSERT_TRUE(db->Materialize(JoinQuery(), "mv_doomed").ok());
  const TableInfo* mv = db->catalog().GetTable("mv_doomed");
  ASSERT_NE(mv, nullptr);
  ASSERT_FALSE(mv->heap->pages().empty());
  // Node stickiness: every page of an unreplicated matview shares one
  // node, so a node loss takes whole matviews, never shreds them.
  const uint32_t home = PageNode(mv->heap->pages().front());
  for (page_id_t page : mv->heap->pages()) {
    EXPECT_EQ(PageNode(page), home);
  }

  db->KillNode(home);
  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_EQ(db->last_recovery().matviews_lost_with_node, 1u);
  EXPECT_EQ(db->catalog().GetTable("mv_doomed"), nullptr);
  EXPECT_FALSE(db->views().Contains("mv_doomed"));
  EXPECT_EQ(db->disk_manager().live_pages(), base_pages);
  EXPECT_EQ(db->storage().OrphanPhysicalPages(), 0u);

  // Queries keep working without the view.
  ExecuteOptions exec;
  exec.keep_rows = true;
  EXPECT_TRUE(db->Execute(JoinQuery(), exec).ok());
}

TEST_F(NodeLossDbTest, MatviewOnSurvivingNodeOutlivesTheLoss) {
  std::unique_ptr<Database> db(MakeShardedDb(400, 1200));
  ASSERT_TRUE(db->Materialize(JoinQuery(), "mv_safe").ok());
  const TableInfo* mv = db->catalog().GetTable("mv_safe");
  ASSERT_NE(mv, nullptr);
  const uint32_t home = PageNode(mv->heap->pages().front());

  db->KillNode((home + 1) % 4);  // any node but the matview's
  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_EQ(db->last_recovery().matviews_lost_with_node, 0u);
  EXPECT_EQ(db->last_recovery().matviews_recovered, 1u);
  EXPECT_TRUE(db->views().Contains("mv_safe"));
  EXPECT_EQ(db->storage().OrphanPhysicalPages(), 0u);
}

TEST_F(NodeLossDbTest, KillingBelowQuorumIsRefusedAndIdempotent) {
  std::unique_ptr<Database> db(MakeShardedDb(200, 600));
  ASSERT_TRUE(db->KillNode(1).ok());
  EXPECT_TRUE(db->KillNode(1).ok());  // idempotent on a dead node

  // A second loss would leave 2 of 4 manifest replicas < quorum 3: the
  // kill is refused before any state changes, instead of ruining the
  // cluster.
  Status second = db->KillNode(2);
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(db->storage().alive_nodes(), 3u);

  // The database is still fully recoverable after the refused kill.
  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_EQ(db->last_recovery().nodes_lost, 1u);
  ExecuteOptions exec;
  exec.keep_rows = true;
  EXPECT_TRUE(db->Execute(JoinQuery(), exec).ok());
}

TEST_F(NodeLossDbTest, SurvivesSecondNodeLossAfterRepair) {
  std::unique_ptr<Database> db(MakeShardedDb(300, 900));
  ExecuteOptions exec;
  exec.keep_rows = true;
  auto before = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(before.ok());

  // First loss: recover, then re-protect. Repair shrinks the manifest
  // configuration past the dead member (4 → 3, quorum 2) and gives
  // every surviving shadow-only page a fresh second copy.
  ASSERT_TRUE(db->KillNode(1).ok());
  ASSERT_TRUE(db->Reopen().ok());
  ASSERT_GT(db->storage().ShadowOnlyPages(), 0u);
  auto repair = db->Repair();
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->complete);
  EXPECT_GT(repair->pages_reprotected, 0u);
  EXPECT_EQ(repair->members_removed, 1u);
  EXPECT_GT(repair->repair_sim_seconds, 0.0);
  EXPECT_EQ(db->storage().ShadowOnlyPages(), 0u);
  EXPECT_EQ(db->manifest().member_count(), 3u);
  EXPECT_EQ(db->manifest().quorum(), 2u);
  // Redundancy is back: every shard slot is homed on a live node.
  for (size_t s = 0; s < db->storage().shard_count(); s++) {
    EXPECT_TRUE(db->storage().NodeAlive(db->storage().shard_home(s)));
  }

  // Second loss — fatal before the repair — is now survivable, with
  // bit-identical results.
  ASSERT_TRUE(db->KillNode(2).ok());
  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_EQ(db->last_recovery().orphan_pages_per_node_audit, 0u);
  auto after = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(RowSet(*after), RowSet(*before));

  // A third loss would break the shrunken quorum (1 of 2 < 2): refused.
  EXPECT_EQ(db->KillNode(3).code(), StatusCode::kFailedPrecondition);
}

TEST_F(NodeLossDbTest, RepairIsInterruptibleUnderAPageBudget) {
  std::unique_ptr<Database> db(MakeShardedDb(300, 900));
  ASSERT_TRUE(db->KillNode(0).ok());
  ASSERT_TRUE(db->Reopen().ok());
  ASSERT_GT(db->storage().ShadowOnlyPages(), 3u);

  // A budgeted pass does bounded work and reports what remains (repair
  // needs also cover pages whose *shadow* died, so the queue is larger
  // than the shadow-only count); the loop drives redundancy back in
  // small, interruptible steps.
  auto first = db->Repair(/*max_pages=*/2);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->complete);
  EXPECT_EQ(first->pages_reprotected, 2u);
  EXPECT_GT(first->pages_remaining, 0u);
  size_t passes = 1;
  while (!db->last_repair().complete) {
    ASSERT_TRUE(db->Repair(2).ok());
    ASSERT_LT(++passes, 200u) << "repair loop failed to converge";
  }
  EXPECT_EQ(db->storage().ShadowOnlyPages(), 0u);
  EXPECT_EQ(db->storage().OrphanPhysicalPages(), 0u);
}

TEST_F(NodeLossDbTest, SingleNodeDatabaseIgnoresNodeApi) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(100, 300));
  EXPECT_EQ(db->storage().node_count(), 1u);
  db->KillNode(0);  // no-op: there is no node to lose
  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_EQ(db->last_recovery().nodes_lost, 0u);
  EXPECT_EQ(db->disk_manager().live_pages(), CatalogPages(*db));
}

// ------------------------------------------------ randomized schedules

TraceEvent SelAdd(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kAddSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent SelDel(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kRemoveSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent JoinAdd(JoinPred j) {
  TraceEvent e;
  e.type = TraceEventType::kAddJoin;
  e.join = std::move(j);
  return e;
}

/// Deterministic synthetic session over the r/s schema (the crash
/// harness's generator): formulations of 1-3 selections, optional join,
/// churn edits, GOs, inter-query retention.
Trace MakeNodeLossTrace(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 11);
  Trace trace;
  trace.user_id = seed;
  trace.seed = seed;
  double t = 1.0;
  auto emit = [&](TraceEvent e) {
    t += rng.NextDouble(0.5, 6.0);
    e.timestamp = t;
    trace.events.push_back(std::move(e));
  };

  const bool use_join = rng.NextBool(0.7);
  bool join_present = false;
  std::vector<SelectionPred> present;
  int64_t next_r = 3, next_s = 2;
  auto draw_sel = [&](bool on_s) {
    if (on_s) {
      next_s += 3;
      return Sel("s", "s_c", CompareOp::kLt, Value(next_s));
    }
    next_r += 5;
    return Sel("r", "r_a", CompareOp::kLt, Value(next_r));
  };

  const size_t queries = 4 + rng.NextRange(3);
  for (size_t q = 0; q < queries; q++) {
    if (use_join && !join_present) {
      emit(JoinAdd(RsJoin()));
      join_present = true;
    }
    bool has_r = false;
    for (const auto& s : present) has_r |= s.table == "r";
    size_t adds = (has_r ? 0 : 1) + rng.NextRange(2);
    for (size_t a = 0; a < adds || !has_r; a++) {
      bool on_s = join_present && rng.NextBool(0.4) && has_r;
      SelectionPred sel = draw_sel(on_s);
      present.push_back(sel);
      has_r |= sel.table == "r";
      emit(SelAdd(sel));
    }
    if (rng.NextBool(0.4)) {
      SelectionPred churn = draw_sel(join_present);
      emit(SelAdd(churn));
      emit(SelDel(churn));
    }
    TraceEvent go;
    go.type = TraceEventType::kGo;
    emit(go);
    for (size_t i = present.size(); i-- > 0;) {
      if (rng.NextBool(0.35)) {
        emit(SelDel(present[i]));
        present.erase(present.begin() + i);
      }
    }
  }
  return trace;
}

struct NodeLossRunResult {
  std::vector<std::vector<std::string>> results;
  size_t recoveries = 0;
  size_t nodes_killed = 0;
};

/// Replay one trace on a 4-node database. When `kill_node` is set, one
/// randomly chosen node is permanently killed at a random event
/// boundary; transient per-node partitions and disk faults fire inside
/// speculative work throughout. Every kill or crash is followed by
/// Database::Reopen() + SpeculationEngine::RecoverAfterCrash(), after
/// which zero orphans must remain on every surviving node.
Result<NodeLossRunResult> RunNodeLossSession(
    Database* db, const Trace& trace,
    const SpeculationEngineOptions& options, uint64_t seed, bool inject) {
  SQP_RETURN_IF_ERROR(db->ColdStart());
  SimServer server;
  SpeculationEngine engine(db, &server, options);
  Rng rng(seed * 0x6a09e667f3bcc909ULL + 17);
  NodeLossRunResult out;
  double exec_offset = 0;
  const size_t kill_at =
      inject ? rng.NextRange(trace.events.size()) : trace.events.size();
  const size_t victim = rng.NextRange(4);

  auto recover = [&](double sim_time) -> Status {
    out.recoveries++;
    SQP_RETURN_IF_ERROR(db->Reopen());
    SQP_RETURN_IF_ERROR(engine.RecoverAfterCrash(sim_time));
    if (db->disk_manager().live_pages() != CatalogPages(*db)) {
      return Status::Internal("orphan pages survived recovery");
    }
    if (db->storage().OrphanPhysicalPages() != 0) {
      return Status::Internal("per-node orphan audit failed");
    }
    return Status::OK();
  };

  for (size_t e = 0; e < trace.events.size(); e++) {
    const TraceEvent& event = trace.events[e];
    double sim_time = event.timestamp + exec_offset;
    server.AdvanceTo(sim_time);
    if (e == kill_at) {
      db->KillNode(victim);
      out.nodes_killed++;
      SQP_RETURN_IF_ERROR(recover(sim_time));
    }
    if (inject && rng.NextBool(0.03)) {
      db->SimulateCrash();  // plug pulled between operations
      SQP_RETURN_IF_ERROR(recover(sim_time));
    }
    if (event.type != TraceEventType::kGo) {
      SQP_RETURN_IF_ERROR(engine.OnUserEvent(event, sim_time));
      if (db->disk_manager().has_crashed()) {
        SQP_RETURN_IF_ERROR(recover(sim_time));
      }
      continue;
    }
    QueryGraph final_query = engine.partial();
    auto submit_time = engine.OnGo(sim_time);
    if (!submit_time.ok()) return submit_time.status();
    if (db->disk_manager().has_crashed()) {
      SQP_RETURN_IF_ERROR(recover(sim_time));
    }
    if (*submit_time > sim_time) {
      server.AdvanceTo(*submit_time);
      SQP_RETURN_IF_ERROR(engine.ResolveWait(*submit_time));
    }
    ExecuteOptions exec;
    exec.keep_rows = true;
    exec.view_mode = options.enabled ? engine.final_view_mode()
                                     : ViewMode::kCostBased;
    auto result = db->Execute(final_query, exec);
    if (!result.ok()) {
      if (!db->disk_manager().has_crashed()) return result.status();
      SQP_RETURN_IF_ERROR(recover(sim_time));
      result = db->Execute(final_query, exec);
      if (!result.ok()) return result.status();
    }
    SimServer::JobId job = server.Submit(result->seconds);
    double done = server.RunUntilComplete(job);
    exec_offset += done - sim_time;
    SQP_RETURN_IF_ERROR(engine.OnQueryResult(done));
    if (db->disk_manager().has_crashed()) {
      SQP_RETURN_IF_ERROR(recover(done));
    }
    out.results.push_back(RowSet(*result));
  }
  SQP_RETURN_IF_ERROR(engine.Shutdown());
  return out;
}

TEST(NodeLossChaosTest, RandomizedNodeLossSchedulesRecoverToBaseline) {
  uint64_t base_seed = 1;
  if (const char* env = std::getenv("SQP_NODELOSS_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  size_t total_kills = 0;
  size_t total_recoveries = 0;
  for (uint64_t i = 0; i < 10; i++) {
    const uint64_t seed = base_seed * 1000 + i;
    SCOPED_TRACE("node-loss seed " + std::to_string(seed));
    Trace trace = MakeNodeLossTrace(seed);

    // Node loss is permanent, so each schedule gets a fresh pair of
    // identically-seeded 4-node databases: a fault-free oracle and a
    // victim that loses a node mid-session.
    std::unique_ptr<Database> oracle(MakeShardedDb(300, 900));
    std::unique_ptr<Database> db(MakeShardedDb(300, 900));
    FaultInjector::Global().Reset();

    SpeculationEngineOptions off;
    off.enabled = false;
    auto baseline = RunNodeLossSession(oracle.get(), trace, off, seed,
                                       /*inject=*/false);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    ASSERT_EQ(baseline->nodes_killed, 0u);

    // The victim runs speculation with per-node transient faults armed
    // (they hit speculative work only) plus the one permanent kill.
    Rng arm_rng(seed * 7919 + 29);
    FaultInjector& injector = FaultInjector::Global();
    injector.Reset();
    injector.Seed(seed * 31 + 13);
    for (size_t k = 0; k < 4; k++) {
      std::string tag = "node" + std::to_string(k);
      injector.Arm(tag + ".partition",
                   FaultSpec::Probability(arm_rng.NextDouble(0.0, 0.02)));
      injector.Arm(tag + ".disk.read",
                   FaultSpec::Probability(arm_rng.NextDouble(0.0, 0.01)));
      injector.Arm(tag + ".disk.write",
                   FaultSpec::Probability(arm_rng.NextDouble(0.0, 0.01)));
    }

    SpeculationEngineOptions on;
    on.enabled = true;
    on.max_retries = 1;
    on.retry_backoff_seconds = 0.25;
    on.circuit_breaker_threshold = 4;
    on.circuit_breaker_cooldown_seconds = 15.0;
    auto survived =
        RunNodeLossSession(db.get(), trace, on, seed, /*inject=*/true);
    FaultInjector::Global().Reset();
    ASSERT_TRUE(survived.ok()) << survived.status().ToString();
    total_kills += survived->nodes_killed;
    total_recoveries += survived->recoveries;

    // (a) Results bit-identical to the fault-free run.
    ASSERT_EQ(survived->results.size(), baseline->results.size());
    for (size_t q = 0; q < baseline->results.size(); q++) {
      EXPECT_EQ(survived->results[q], baseline->results[q])
          << "query " << q << " diverged after node loss";
    }

    // (b) The manifest recovered from a quorum of surviving replicas.
    EXPECT_GE(db->manifest().alive_replicas(), db->manifest().quorum());

    // (c) No residue: speculative state gone, zero orphans on every
    // surviving node, committed base tables fully available.
    EXPECT_EQ(db->views().size(), 0u);
    EXPECT_EQ(db->catalog().MaterializedTableNames().size(), 0u);
    ASSERT_EQ(db->disk_manager().live_pages(), CatalogPages(*db));
    ASSERT_EQ(db->storage().OrphanPhysicalPages(), 0u);
  }
  // The sweep must actually have killed nodes, or it proved nothing.
  EXPECT_GT(total_kills, 0u);
  EXPECT_GT(total_recoveries, 0u);
}

}  // namespace
}  // namespace sqp
