// SQL frontend: lexer, parser, binder.
#include <gtest/gtest.h>

#include <memory>

#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace sqp {
namespace {

// ----------------------------------------------------------------- Lexer

TEST(LexerTest, TokenizesBasics) {
  auto tokens = Tokenize("SELECT a, b FROM t WHERE a <= 5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 11u);  // incl. kEnd
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdent);
  EXPECT_TRUE((*tokens)[0].IsKeyword("select"));
  EXPECT_EQ((*tokens)[2].type, TokenType::kComma);
  EXPECT_EQ((*tokens)[8].type, TokenType::kLe);
  EXPECT_EQ((*tokens)[9].type, TokenType::kNumber);
  EXPECT_EQ((*tokens).back().type, TokenType::kEnd);
}

TEST(LexerTest, OperatorsAndLiterals) {
  auto tokens = Tokenize("<> != < <= > >= = 'str lit' 3.14 -7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[1].type, TokenType::kNe);
  EXPECT_EQ((*tokens)[2].type, TokenType::kLt);
  EXPECT_EQ((*tokens)[3].type, TokenType::kLe);
  EXPECT_EQ((*tokens)[4].type, TokenType::kGt);
  EXPECT_EQ((*tokens)[5].type, TokenType::kGe);
  EXPECT_EQ((*tokens)[6].type, TokenType::kEq);
  EXPECT_EQ((*tokens)[7].type, TokenType::kString);
  EXPECT_EQ((*tokens)[7].text, "str lit");
  EXPECT_EQ((*tokens)[8].type, TokenType::kNumber);
  EXPECT_EQ((*tokens)[8].text, "3.14");
  EXPECT_EQ((*tokens)[9].text, "-7");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

// ---------------------------------------------------------------- Parser

TEST(ParserTest, SelectStar) {
  auto ast = ParseSelect("SELECT * FROM r");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(ast->select_star);
  ASSERT_EQ(ast->tables.size(), 1u);
  EXPECT_EQ(ast->tables[0], "r");
  EXPECT_TRUE(ast->conditions.empty());
}

TEST(ParserTest, ProjectionsAndQualifiedColumns) {
  auto ast = ParseSelect("SELECT r.a, b FROM r, s");
  ASSERT_TRUE(ast.ok());
  ASSERT_EQ(ast->projections.size(), 2u);
  EXPECT_EQ(ast->projections[0].table, "r");
  EXPECT_EQ(ast->projections[0].column, "a");
  EXPECT_EQ(ast->projections[1].table, "");
  EXPECT_EQ(ast->tables.size(), 2u);
}

TEST(ParserTest, WhereConjunction) {
  auto ast = ParseSelect(
      "SELECT * FROM r, s WHERE r.id = s.rid AND a < 10 AND s.c >= 2.5 "
      "AND name = 'bob'");
  ASSERT_TRUE(ast.ok());
  ASSERT_EQ(ast->conditions.size(), 4u);
  EXPECT_TRUE(ast->conditions[0].is_join);
  EXPECT_FALSE(ast->conditions[1].is_join);
  EXPECT_EQ(ast->conditions[1].op, CompareOp::kLt);
  EXPECT_EQ(ast->conditions[1].literal.AsInt64(), 10);
  EXPECT_EQ(ast->conditions[2].literal.AsDouble(), 2.5);
  EXPECT_EQ(ast->conditions[3].literal.AsString(), "bob");
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(ParseSelect("select * from r where a = 1").ok());
  EXPECT_TRUE(ParseSelect("SeLeCt * FrOm r").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("FROM r").ok());
  EXPECT_FALSE(ParseSelect("SELECT FROM r").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM r WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM r WHERE a").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM r WHERE a <").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM r extra garbage").ok());
  // Column-column conditions must be equijoins.
  EXPECT_FALSE(ParseSelect("SELECT * FROM r, s WHERE r.a < s.b").ok());
}

// ---------------------------------------------------------------- Binder

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override { db_.reset(testutil::MakeTwoTableDb(50, 50)); }
  std::unique_ptr<Database> db_;
};

TEST_F(BinderTest, BindsJoinAndSelection) {
  auto graph = ParseAndBind(
      "SELECT r_a FROM r, s WHERE r_id = s_rid AND r_a < 10",
      db_->catalog());
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->relations().size(), 2u);
  EXPECT_EQ(graph->joins().size(), 1u);
  EXPECT_EQ(graph->selections().size(), 1u);
  EXPECT_EQ(graph->selections()[0].table, "r");
  ASSERT_EQ(graph->projections().size(), 1u);
  EXPECT_EQ(graph->projections()[0], "r_a");
}

TEST_F(BinderTest, ResolvesUnqualifiedColumnsAcrossTables) {
  auto graph = ParseAndBind("SELECT * FROM r, s WHERE s_c = 3",
                            db_->catalog());
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->selections()[0].table, "s");
}

TEST_F(BinderTest, RejectsUnknownTableAndColumn) {
  EXPECT_FALSE(ParseAndBind("SELECT * FROM nosuch", db_->catalog()).ok());
  EXPECT_FALSE(
      ParseAndBind("SELECT * FROM r WHERE nosuch = 1", db_->catalog()).ok());
  EXPECT_FALSE(
      ParseAndBind("SELECT nosuch FROM r", db_->catalog()).ok());
}

TEST_F(BinderTest, RejectsQualifierNotInFrom) {
  EXPECT_FALSE(
      ParseAndBind("SELECT * FROM r WHERE s.s_c = 1", db_->catalog()).ok());
}

TEST_F(BinderTest, RejectsSelfJoinCondition) {
  EXPECT_FALSE(
      ParseAndBind("SELECT * FROM r WHERE r_id = r_a", db_->catalog()).ok());
}

TEST_F(BinderTest, StringLiteralTypes) {
  auto graph =
      ParseAndBind("SELECT * FROM r WHERE r_s = 'alpha'", db_->catalog());
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->selections()[0].constant.type(), TypeId::kString);
}

}  // namespace
}  // namespace sqp
