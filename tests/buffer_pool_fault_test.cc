// Buffer-pool failure semantics under injected disk-write faults:
// FlushAll must fail without losing data (flushed frames clean, failed
// frames still dirty, retry completes), and eviction must never drop a
// dirty frame whose flush failed.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cost_meter.h"
#include "common/fault_injector.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace sqp {
namespace {

class BufferPoolFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  /// Arm "disk.write" to fail on its nth hit from now.
  void ArmWriteFault(uint64_t nth) {
    FaultSpec spec = FaultSpec::OneShot(nth);
    spec.only_in_region = false;
    FaultInjector::Global().Arm("disk.write", spec);
  }

  CostMeter meter_;
};

TEST_F(BufferPoolFaultTest, FlushAllPartialFailureLosesNothing) {
  DiskManager disk(&meter_);
  BufferPool pool(&disk, 8);

  // Four dirty pages, each with one distinctive record.
  std::vector<page_id_t> ids;
  for (int i = 0; i < 4; i++) {
    auto page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    std::string record = "page-" + std::to_string(i);
    page->second->Insert(reinterpret_cast<const uint8_t*>(record.data()),
                         static_cast<uint16_t>(record.size()));
    pool.UnpinPage(page->first, /*dirty=*/true);
    ids.push_back(page->first);
  }

  // The third write of the flush sweep fails: some frames are now
  // clean-and-cached, the rest still dirty — but nothing is lost.
  ArmWriteFault(3);
  Status flush = pool.FlushAll();
  ASSERT_FALSE(flush.ok());
  EXPECT_EQ(flush.code(), StatusCode::kResourceExhausted);
  // The barrier never ran: nothing reached the durable image yet.
  EXPECT_EQ(disk.sync_count(), 0u);
  FaultInjector::Global().Reset();

  // Every page still reads back intact through the pool.
  for (page_id_t id : ids) {
    auto page = pool.FetchPage(id);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((*page)->slot_count(), 1);
    pool.UnpinPage(id, false);
  }

  // The retry flushes the remaining dirty frames and syncs everything.
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(disk.unsynced_pages(), 0u);
  // Now durable: bypass the pool and read the disk image directly.
  for (page_id_t id : ids) {
    Page out;
    ASSERT_TRUE(disk.ReadPage(id, &out).ok());
    EXPECT_EQ(out.slot_count(), 1);
  }
}

TEST_F(BufferPoolFaultTest, EvictionNeverDropsADirtyFrameWhoseFlushFailed) {
  DiskManager disk(&meter_);
  BufferPool pool(&disk, 1);  // single frame: every NewPage must evict
  auto a = pool.NewPage();
  ASSERT_TRUE(a.ok());
  a->second->Insert(reinterpret_cast<const uint8_t*>("precious"), 8);
  pool.UnpinPage(a->first, /*dirty=*/true);

  // Every eviction flush fails while the fault is armed: the victim
  // must stay resident and dirty, no matter how often we retry.
  FaultSpec spec = FaultSpec::EveryNth(1);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("disk.write", spec);
  for (int attempt = 0; attempt < 3; attempt++) {
    auto b = pool.NewPage();
    ASSERT_FALSE(b.ok());
  }
  FaultInjector::Global().Reset();

  // The dirty frame survived every failed eviction with its data.
  auto back = pool.FetchPage(a->first);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ((*back)->slot_count(), 1);
  uint16_t len = 0;
  const uint8_t* rec = (*back)->Record(0, &len);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(rec), len),
            "precious");
  pool.UnpinPage(a->first, false);

  // With the fault gone the eviction (and later readback) succeed.
  auto b = pool.NewPage();
  ASSERT_TRUE(b.ok());
  pool.UnpinPage(b->first, false);
  auto again = pool.FetchPage(a->first);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->slot_count(), 1);
  pool.UnpinPage(a->first, false);
}

TEST_F(BufferPoolFaultTest, FlushAllIsASyncBarrier) {
  DiskManager disk(&meter_);
  BufferPool pool(&disk, 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  page->second->Insert(reinterpret_cast<const uint8_t*>("x"), 1);
  pool.UnpinPage(page->first, /*dirty=*/true);

  // A per-page flush lands in the volatile write cache only...
  ASSERT_TRUE(pool.FlushPage(page->first).ok());
  EXPECT_EQ(disk.unsynced_pages(), 1u);
  EXPECT_EQ(disk.sync_count(), 0u);
  // ...while FlushAll is a durability barrier.
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(disk.unsynced_pages(), 0u);
  EXPECT_EQ(disk.sync_count(), 1u);
}

TEST_F(BufferPoolFaultTest, FlushAllSurfacesACrashedDisk) {
  DiskManager disk(&meter_);
  BufferPool pool(&disk, 4);
  auto page = pool.NewPage();
  ASSERT_TRUE(page.ok());
  page->second->Insert(reinterpret_cast<const uint8_t*>("x"), 1);
  pool.UnpinPage(page->first, /*dirty=*/true);

  disk.SimulateCrash();
  Status flush = pool.FlushAll();
  EXPECT_EQ(flush.code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace sqp
