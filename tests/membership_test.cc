// Self-healing storage tier (DESIGN.md §13): dynamic membership via
// two-phase joint consensus (AddNode / DecommissionNode), deterministic
// rollback when a joint quorum fails, crash-safe shard rebalancing, the
// Repair() re-protection pass, and a randomized membership fuzz harness
// interleaving join / decommission / kill / repair / crash schedules
// with trace replay. Invariants throughout: committed results stay
// bit-identical to a fault-free run, zero orphan pages on every
// surviving node, and zero shadow-only pages once repair completes.
#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "db/database.h"
#include "db/replicated_manifest.h"
#include "sim/sim_server.h"
#include "speculation/engine.h"
#include "storage/sharded_router.h"
#include "test_util.h"
#include "trace/trace.h"

namespace sqp {
namespace {

using testutil::RsJoin;
using testutil::Sel;

/// MakeTwoTableDb on a 4-node sharded tier (quorum 3).
Database* MakeShardedDb(size_t rows_r, size_t rows_s, uint64_t seed = 7) {
  DatabaseOptions options;
  options.buffer_pool_pages = 256;
  options.storage_nodes = 4;

  auto* db = new Database(options);
  Schema r_schema({{"r_id", TypeId::kInt64},
                   {"r_a", TypeId::kInt64},
                   {"r_b", TypeId::kDouble},
                   {"r_s", TypeId::kString}});
  Schema s_schema({{"s_id", TypeId::kInt64},
                   {"s_rid", TypeId::kInt64},
                   {"s_c", TypeId::kInt64}});
  if (!db->CreateTable("r", r_schema).ok()) return db;
  if (!db->CreateTable("s", s_schema).ok()) return db;

  Rng rng(seed);
  const char* strs[] = {"alpha", "beta", "gamma"};
  std::vector<Tuple> r_rows;
  for (size_t i = 0; i < rows_r; i++) {
    r_rows.push_back(Tuple{Value(static_cast<int64_t>(i)),
                           Value(rng.NextInt(0, 99)),
                           Value(rng.NextDouble(0, 1000)),
                           Value(std::string(strs[i % 3]))});
  }
  (void)db->BulkLoad("r", r_rows);
  std::vector<Tuple> s_rows;
  for (size_t i = 0; i < rows_s; i++) {
    s_rows.push_back(Tuple{
        Value(static_cast<int64_t>(i)),
        Value(rng.NextInt(0, static_cast<int64_t>(rows_r) - 1)),
        Value(rng.NextInt(0, 49))});
  }
  (void)db->BulkLoad("s", s_rows);
  return db;
}

uint64_t CatalogPages(const Database& db) {
  uint64_t total = 0;
  for (const auto& name : db.catalog().TableNames()) {
    total += db.catalog().GetTable(name)->heap->page_count();
  }
  return total;
}

std::vector<std::string> RowSet(const QueryResult& result) {
  std::vector<size_t> order(result.schema.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.schema.column(a).name < result.schema.column(b).name;
  });
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Tuple& tuple : result.rows) {
    std::string s;
    for (size_t i : order) {
      s += result.schema.column(i).name;
      s += '=';
      s += tuple[i].ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class MembershipTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  QueryGraph JoinQuery() {
    QueryGraph q;
    q.AddJoin(RsJoin());
    q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{40})));
    return q;
  }
};

// --------------------------------------------------------------- joins

TEST_F(MembershipTest, AddNodeJoinsAndRebalancesAFairShare) {
  std::unique_ptr<Database> db(MakeShardedDb(300, 900));
  ExecuteOptions exec;
  exec.keep_rows = true;
  auto before = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(before.ok());

  auto joined = db->AddNode();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  EXPECT_EQ(*joined, 4u);
  EXPECT_EQ(db->storage().node_count(), 5u);
  EXPECT_EQ(db->storage().alive_nodes(), 5u);
  EXPECT_EQ(db->manifest().member_count(), 5u);
  EXPECT_EQ(db->manifest().quorum(), 3u);
  EXPECT_FALSE(db->manifest().in_joint_transition());

  // The new node received its fair share of shard slots (8 slots / 5
  // nodes → 1), and the moved pages physically live there now.
  ASSERT_EQ(db->storage().ShardsHomedAt(4).size(), 1u);
  const size_t moved_slot = db->storage().ShardsHomedAt(4).front();
  EXPECT_FALSE(db->storage().PagesInShard(moved_slot).empty());
  for (page_id_t page : db->storage().PagesInShard(moved_slot)) {
    EXPECT_EQ(db->storage().PagePrimaryNode(page), 4u);
  }
  EXPECT_EQ(db->storage().OrphanPhysicalPages(), 0u);
  EXPECT_EQ(db->storage().ShadowOnlyPages(), 0u);

  // Global page ids are stable: results are bit-identical after the
  // move, and new bulk loads spread onto the new node.
  auto after = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(RowSet(*after), RowSet(*before));
}

TEST_F(MembershipTest, JoinSurvivesReopenAndAnotherNodeLoss) {
  std::unique_ptr<Database> db(MakeShardedDb(300, 900));
  ExecuteOptions exec;
  exec.keep_rows = true;
  auto before = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(db->AddNode().ok());

  // The 5-member configuration still has quorum 3: one loss is fine.
  ASSERT_TRUE(db->KillNode(0).ok());
  ASSERT_TRUE(db->Reopen().ok());
  auto repair = db->Repair();
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(repair->complete);
  EXPECT_EQ(db->storage().ShadowOnlyPages(), 0u);
  auto after = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(RowSet(*after), RowSet(*before));
}

// ------------------------------------------------------ decommissions

TEST_F(MembershipTest, DecommissionDrainsEverythingAndRetiresTheNode) {
  std::unique_ptr<Database> db(MakeShardedDb(300, 900));
  ExecuteOptions exec;
  exec.keep_rows = true;
  auto before = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(db->DecommissionNode(1).ok());
  EXPECT_TRUE(db->storage().NodeRetired(1));
  EXPECT_FALSE(db->storage().NodeAlive(1));
  EXPECT_EQ(db->storage().alive_nodes(), 3u);
  EXPECT_EQ(db->manifest().member_count(), 3u);
  EXPECT_FALSE(db->manifest().IsMember(1));
  EXPECT_EQ(db->manifest().quorum(), 2u);

  // Fully drained: no shard homes, no primaries, no shadows left.
  EXPECT_TRUE(db->storage().ShardsHomedAt(1).empty());
  EXPECT_TRUE(db->storage().PagesWithPrimaryOn(1).empty());
  EXPECT_TRUE(db->storage().PagesWithReplicaOn(1).empty());
  EXPECT_EQ(db->storage().ShadowOnlyPages(), 0u);
  EXPECT_EQ(db->storage().OrphanPhysicalPages(), 0u);

  // Idempotent, and invisible to queries and recovery: a gracefully
  // removed node is not a *lost* node.
  EXPECT_TRUE(db->DecommissionNode(1).ok());
  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_EQ(db->last_recovery().nodes_lost, 0u);
  EXPECT_EQ(db->last_recovery().matviews_lost_with_node, 0u);
  auto after = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(RowSet(*after), RowSet(*before));
}

TEST_F(MembershipTest, DecommissionRefusesWhatWouldWreckTheTier) {
  std::unique_ptr<Database> db(MakeShardedDb(200, 600));
  EXPECT_EQ(db->DecommissionNode(9).code(), StatusCode::kInvalidArgument);

  // A dead node cannot be decommissioned — that's Repair()'s job.
  ASSERT_TRUE(db->KillNode(2).ok());
  EXPECT_EQ(db->DecommissionNode(2).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(db->Reopen().ok());
  auto repair = db->Repair();
  ASSERT_TRUE(repair.ok());

  // Down to three alive nodes; one graceful removal is fine, the next
  // would leave a single copy of everything: refused.
  ASSERT_TRUE(db->DecommissionNode(0).ok());
  EXPECT_EQ(db->storage().alive_nodes(), 2u);
  EXPECT_EQ(db->DecommissionNode(1).code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------- joint-consensus rollbacks

TEST_F(MembershipTest, JointQuorumFailureOnBeginRollsTheJoinBackFully) {
  std::unique_ptr<Database> db(MakeShardedDb(200, 600));
  FaultSpec spec = FaultSpec::EveryNth(1);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("membership.jointcommit", spec);

  auto joined = db->AddNode();
  ASSERT_FALSE(joined.ok());
  EXPECT_TRUE(joined.status().IsRetryable());
  // Nothing changed: no new node, no new member, no open transition.
  EXPECT_EQ(db->storage().node_count(), 4u);
  EXPECT_EQ(db->manifest().member_count(), 4u);
  EXPECT_EQ(db->manifest().replica_count(), 4u);
  EXPECT_FALSE(db->manifest().in_joint_transition());

  // After the fault clears the same join succeeds.
  FaultInjector::Global().Reset();
  auto retried = db->AddNode();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(*retried, 4u);
  EXPECT_EQ(db->manifest().member_count(), 5u);
}

TEST_F(MembershipTest, JointQuorumFailureOnCompleteAbortsDeterministically) {
  std::unique_ptr<Database> db(MakeShardedDb(200, 600));
  // First joint-gated entry (the joint config) passes, the second (the
  // final config) fails: the join must abort back to the old
  // configuration.
  FaultSpec spec = FaultSpec::OneShot(2);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("membership.jointcommit", spec);

  auto joined = db->AddNode();
  ASSERT_FALSE(joined.ok());
  EXPECT_TRUE(joined.status().IsRetryable());
  EXPECT_EQ(db->manifest().member_count(), 4u);
  EXPECT_FALSE(db->manifest().in_joint_transition());
  // The aborted slot is never reused: the router node exists but is
  // retired, and replica ids stay aligned with storage-node ids.
  EXPECT_EQ(db->storage().node_count(), 5u);
  EXPECT_TRUE(db->storage().NodeRetired(4));
  EXPECT_EQ(db->manifest().replica_count(), 5u);
  EXPECT_FALSE(db->manifest().IsMember(4));

  FaultInjector::Global().Reset();
  auto retried = db->AddNode();
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(*retried, 5u);  // a fresh slot, not the burned one
  EXPECT_EQ(db->manifest().member_count(), 5u);
  EXPECT_EQ(db->storage().alive_nodes(), 5u);

  ExecuteOptions exec;
  exec.keep_rows = true;
  EXPECT_TRUE(db->Execute(JoinQuery(), exec).ok());
}

TEST_F(MembershipTest, RebalanceCopyFaultLeavesPlacementsUntouched) {
  std::unique_ptr<Database> db(MakeShardedDb(300, 900));
  FaultSpec spec = FaultSpec::EveryNth(1);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("node4.rebalance.copy", spec);

  // The membership change commits, but the rebalance onto the new node
  // is refused copy-by-copy: every staged copy is aborted, placements
  // and the shard map stay untouched.
  auto joined = db->AddNode();
  ASSERT_FALSE(joined.ok());
  EXPECT_TRUE(joined.status().IsRetryable());
  EXPECT_EQ(db->manifest().member_count(), 5u);
  EXPECT_TRUE(db->storage().ShardsHomedAt(4).empty());
  EXPECT_TRUE(db->storage().PagesWithPrimaryOn(4).empty());
  EXPECT_EQ(db->storage().OrphanPhysicalPages(), 0u);

  // Repair (or a later join) can finish the rebalance once the fault
  // clears; queries never stopped working.
  FaultInjector::Global().Reset();
  ExecuteOptions exec;
  exec.keep_rows = true;
  EXPECT_TRUE(db->Execute(JoinQuery(), exec).ok());
}

// ------------------------------------------------- crash-safe rebalance

TEST_F(MembershipTest, CrashMidRebalanceReplaysToExactlyOneOwner) {
  std::unique_ptr<Database> db(MakeShardedDb(300, 900));
  ExecuteOptions exec;
  exec.keep_rows = true;
  auto before = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(before.ok());

  // Crash on the first staged copy landing on the new node: after the
  // membership committed, before any shard move's manifest commit.
  FaultSpec spec = FaultSpec::OneShot(1);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("node4.disk.crash", spec);
  auto joined = db->AddNode();
  ASSERT_FALSE(joined.ok());
  ASSERT_TRUE(db->disk_manager().has_crashed());
  FaultInjector::Global().Reset();

  // Replay: the old owners still serve every page (the move never
  // committed), and the staged physical pages the crash cut loose are
  // collected. Never two owners.
  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_GE(db->last_recovery().physical_orphans_collected, 1u);
  EXPECT_EQ(db->storage().OrphanPhysicalPages(), 0u);
  EXPECT_TRUE(db->storage().ShardsHomedAt(4).empty());
  EXPECT_EQ(db->manifest().member_count(), 5u);  // the join itself stood
  auto after = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(RowSet(*after), RowSet(*before));
}

// ------------------------------------------------ randomized schedules

TraceEvent SelAdd(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kAddSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent SelDel(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kRemoveSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent JoinAdd(JoinPred j) {
  TraceEvent e;
  e.type = TraceEventType::kAddJoin;
  e.join = std::move(j);
  return e;
}

/// Deterministic synthetic session over the r/s schema.
Trace MakeMembershipTrace(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 23);
  Trace trace;
  trace.user_id = seed;
  trace.seed = seed;
  double t = 1.0;
  auto emit = [&](TraceEvent e) {
    t += rng.NextDouble(0.5, 6.0);
    e.timestamp = t;
    trace.events.push_back(std::move(e));
  };

  const bool use_join = rng.NextBool(0.7);
  bool join_present = false;
  std::vector<SelectionPred> present;
  int64_t next_r = 3, next_s = 2;
  auto draw_sel = [&](bool on_s) {
    if (on_s) {
      next_s += 3;
      return Sel("s", "s_c", CompareOp::kLt, Value(next_s));
    }
    next_r += 5;
    return Sel("r", "r_a", CompareOp::kLt, Value(next_r));
  };

  const size_t queries = 4 + rng.NextRange(3);
  for (size_t q = 0; q < queries; q++) {
    if (use_join && !join_present) {
      emit(JoinAdd(RsJoin()));
      join_present = true;
    }
    bool has_r = false;
    for (const auto& s : present) has_r |= s.table == "r";
    size_t adds = (has_r ? 0 : 1) + rng.NextRange(2);
    for (size_t a = 0; a < adds || !has_r; a++) {
      bool on_s = join_present && rng.NextBool(0.4) && has_r;
      SelectionPred sel = draw_sel(on_s);
      present.push_back(sel);
      has_r |= sel.table == "r";
      emit(SelAdd(sel));
    }
    TraceEvent go;
    go.type = TraceEventType::kGo;
    emit(go);
    for (size_t i = present.size(); i-- > 0;) {
      if (rng.NextBool(0.35)) {
        emit(SelDel(present[i]));
        present.erase(present.begin() + i);
      }
    }
  }
  return trace;
}

struct MembershipRunResult {
  std::vector<std::vector<std::string>> results;
  size_t kills = 0;
  size_t joins = 0;
  size_t decommissions = 0;
  size_t repairs = 0;
  size_t crashes = 0;
  size_t skipped_ops = 0;
};

/// Replay one trace on a 4-node database while a randomized membership
/// schedule fires at event boundaries: kills, joins, decommissions,
/// repairs, and plug-pull crashes. Preconditions that refuse an op
/// (quorum guards, too-few-nodes) and retryable joint-quorum failures
/// count as skips — the harness only demands that whatever *was*
/// allowed to happen never changes a committed result.
Result<MembershipRunResult> RunMembershipSession(
    Database* db, const Trace& trace,
    const SpeculationEngineOptions& options, uint64_t seed, bool inject) {
  SQP_RETURN_IF_ERROR(db->ColdStart());
  SimServer server;
  SpeculationEngine engine(db, &server, options);
  Rng rng(seed * 0x6a09e667f3bcc909ULL + 31);
  MembershipRunResult out;
  double exec_offset = 0;

  auto recover = [&](double sim_time) -> Status {
    SQP_RETURN_IF_ERROR(db->Reopen());
    SQP_RETURN_IF_ERROR(engine.RecoverAfterCrash(sim_time));
    if (db->disk_manager().live_pages() != CatalogPages(*db)) {
      return Status::Internal("orphan pages survived recovery");
    }
    if (db->storage().OrphanPhysicalPages() != 0) {
      return Status::Internal("per-node orphan audit failed");
    }
    return Status::OK();
  };

  auto membership_op = [&](double sim_time) -> Status {
    switch (rng.NextRange(5)) {
      case 0: {  // kill (the quorum guard may refuse)
        size_t victim = rng.NextRange(db->storage().node_count());
        // A loss is only guaranteed survivable once re-protection has
        // completed (the ISSUE's contract): while pages are still
        // single-copy, another kill is data loss by design, so the
        // schedule holds fire until repair catches up.
        if (!db->storage().PagesNeedingRepair().empty()) {
          out.skipped_ops++;
          return Status::OK();
        }
        Status killed = db->KillNode(victim);
        if (killed.code() == StatusCode::kFailedPrecondition) {
          out.skipped_ops++;
          return Status::OK();
        }
        SQP_RETURN_IF_ERROR(killed);
        engine.NoteEvent(sim_time, "node " + std::to_string(victim) +
                                       " lost");
        out.kills++;
        return recover(sim_time);
      }
      case 1: {  // join
        auto joined = db->AddNode();
        if (!joined.ok()) {
          if (joined.status().IsRetryable() ||
              joined.status().code() == StatusCode::kFailedPrecondition ||
              joined.status().code() == StatusCode::kInvalidArgument) {
            out.skipped_ops++;
            if (db->disk_manager().has_crashed()) return recover(sim_time);
            return Status::OK();
          }
          return joined.status();
        }
        engine.NoteEvent(sim_time,
                         "node " + std::to_string(*joined) + " joined");
        out.joins++;
        return Status::OK();
      }
      case 2: {  // decommission
        size_t victim = rng.NextRange(db->storage().node_count());
        Status gone = db->DecommissionNode(victim);
        if (!gone.ok()) {
          if (gone.IsRetryable() ||
              gone.code() == StatusCode::kFailedPrecondition ||
              gone.code() == StatusCode::kInvalidArgument) {
            out.skipped_ops++;
            if (db->disk_manager().has_crashed()) return recover(sim_time);
            return Status::OK();
          }
          return gone;
        }
        engine.NoteEvent(sim_time, "node " + std::to_string(victim) +
                                       " decommissioned");
        out.decommissions++;
        return Status::OK();
      }
      case 3: {  // repair (sometimes budgeted)
        size_t budget = rng.NextBool(0.5) ? 0 : 1 + rng.NextRange(8);
        auto repaired = db->Repair(budget);
        if (!repaired.ok()) {
          if (repaired.status().IsRetryable() ||
              repaired.status().code() == StatusCode::kFailedPrecondition) {
            out.skipped_ops++;
            if (db->disk_manager().has_crashed()) return recover(sim_time);
            return Status::OK();
          }
          return repaired.status();
        }
        out.repairs++;
        return Status::OK();
      }
      default: {  // plug-pull crash
        db->SimulateCrash();
        out.crashes++;
        return recover(sim_time);
      }
    }
  };

  for (size_t e = 0; e < trace.events.size(); e++) {
    const TraceEvent& event = trace.events[e];
    double sim_time = event.timestamp + exec_offset;
    server.AdvanceTo(sim_time);
    if (inject && rng.NextBool(0.25)) {
      SQP_RETURN_IF_ERROR(membership_op(sim_time));
    }
    if (event.type != TraceEventType::kGo) {
      SQP_RETURN_IF_ERROR(engine.OnUserEvent(event, sim_time));
      if (db->disk_manager().has_crashed()) {
        SQP_RETURN_IF_ERROR(recover(sim_time));
      }
      continue;
    }
    QueryGraph final_query = engine.partial();
    auto submit_time = engine.OnGo(sim_time);
    if (!submit_time.ok()) return submit_time.status();
    if (db->disk_manager().has_crashed()) {
      SQP_RETURN_IF_ERROR(recover(sim_time));
    }
    if (*submit_time > sim_time) {
      server.AdvanceTo(*submit_time);
      SQP_RETURN_IF_ERROR(engine.ResolveWait(*submit_time));
    }
    ExecuteOptions exec;
    exec.keep_rows = true;
    exec.view_mode = options.enabled ? engine.final_view_mode()
                                     : ViewMode::kCostBased;
    auto result = db->Execute(final_query, exec);
    if (!result.ok()) {
      if (!db->disk_manager().has_crashed()) return result.status();
      SQP_RETURN_IF_ERROR(recover(sim_time));
      result = db->Execute(final_query, exec);
      if (!result.ok()) return result.status();
    }
    SimServer::JobId job = server.Submit(result->seconds);
    double done = server.RunUntilComplete(job);
    exec_offset += done - sim_time;
    SQP_RETURN_IF_ERROR(engine.OnQueryResult(done));
    if (db->disk_manager().has_crashed()) {
      SQP_RETURN_IF_ERROR(recover(done));
    }
    out.results.push_back(RowSet(*result));
  }
  SQP_RETURN_IF_ERROR(engine.Shutdown());

  // Drive repair to completion: whatever the schedule left degraded
  // must be fully re-protectable.
  if (inject) {
    for (size_t pass = 0; pass < 200; pass++) {
      auto repaired = db->Repair();
      if (!repaired.ok()) {
        if (repaired.status().IsRetryable()) continue;
        return repaired.status();
      }
      if (repaired->complete) break;
    }
    if (!db->last_repair().complete) {
      return Status::Internal("repair failed to converge");
    }
  }
  return out;
}

TEST(MembershipFuzzTest, RandomizedMembershipSchedulesStayConsistent) {
  uint64_t base_seed = 1;
  if (const char* env = std::getenv("SQP_MEMBERSHIP_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  size_t total_ops = 0;
  for (uint64_t i = 0; i < 10; i++) {
    const uint64_t seed = base_seed * 1000 + i;
    SCOPED_TRACE("membership seed " + std::to_string(seed));
    Trace trace = MakeMembershipTrace(seed);

    // Fresh identically-seeded 4-node pair per schedule: a fault-free
    // oracle and a victim living through the membership churn.
    std::unique_ptr<Database> oracle(MakeShardedDb(300, 900));
    std::unique_ptr<Database> db(MakeShardedDb(300, 900));
    FaultInjector::Global().Reset();

    SpeculationEngineOptions off;
    off.enabled = false;
    auto baseline = RunMembershipSession(oracle.get(), trace, off, seed,
                                         /*inject=*/false);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    // The victim: speculation on, low-probability joint-quorum and
    // rebalance-copy faults armed (their rollback paths must be
    // invisible), membership ops firing at event boundaries.
    Rng arm_rng(seed * 7919 + 37);
    FaultInjector& injector = FaultInjector::Global();
    injector.Reset();
    injector.Seed(seed * 31 + 17);
    FaultSpec joint =
        FaultSpec::Probability(arm_rng.NextDouble(0.0, 0.08));
    joint.only_in_region = false;
    injector.Arm("membership.jointcommit", joint);
    for (size_t k = 0; k < 8; k++) {
      FaultSpec copy =
          FaultSpec::Probability(arm_rng.NextDouble(0.0, 0.03));
      copy.only_in_region = false;
      injector.Arm("node" + std::to_string(k) + ".rebalance.copy", copy);
      injector.Arm("node" + std::to_string(k) + ".partition",
                   FaultSpec::Probability(arm_rng.NextDouble(0.0, 0.01)));
    }

    SpeculationEngineOptions on;
    on.enabled = true;
    on.max_retries = 1;
    on.retry_backoff_seconds = 0.25;
    on.circuit_breaker_threshold = 4;
    on.circuit_breaker_cooldown_seconds = 15.0;
    auto survived =
        RunMembershipSession(db.get(), trace, on, seed, /*inject=*/true);
    FaultInjector::Global().Reset();
    ASSERT_TRUE(survived.ok()) << survived.status().ToString();
    total_ops += survived->kills + survived->joins +
                 survived->decommissions + survived->repairs +
                 survived->crashes;

    // (a) Committed results bit-identical to the fault-free oracle.
    ASSERT_EQ(survived->results.size(), baseline->results.size());
    for (size_t q = 0; q < baseline->results.size(); q++) {
      EXPECT_EQ(survived->results[q], baseline->results[q])
          << "query " << q << " diverged under membership churn";
    }

    // (b) Redundancy restored: zero shadow-only pages, every shard
    // slot homed on a live node, the manifest configuration healthy.
    EXPECT_EQ(db->storage().ShadowOnlyPages(), 0u);
    for (size_t s = 0; s < db->storage().shard_count(); s++) {
      EXPECT_TRUE(db->storage().NodeAlive(db->storage().shard_home(s)));
    }
    EXPECT_GE(db->manifest().alive_members(), db->manifest().quorum());
    EXPECT_FALSE(db->manifest().in_joint_transition());

    // (c) Zero orphans of either kind on every surviving node.
    ASSERT_EQ(db->disk_manager().live_pages(), CatalogPages(*db));
    ASSERT_EQ(db->storage().OrphanPhysicalPages(), 0u);
  }
  // The sweep must actually have exercised membership ops.
  EXPECT_GT(total_ops, 0u);
}

}  // namespace
}  // namespace sqp
