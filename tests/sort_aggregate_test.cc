// Sort, sort-merge join, aggregation, limit — and the extended SQL
// surface (GROUP BY / ORDER BY / LIMIT / aggregates) through
// Database::ExecuteSql, including speculation compatibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "common/rng.h"
#include "exec/aggregate.h"
#include "exec/sort.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::RsJoin;
using testutil::Sel;

class SortAggTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reset(testutil::MakeTwoTableDb(400, 1200, /*seed=*/8));
    r_ = db_->catalog().GetTable("r");
    s_ = db_->catalog().GetTable("s");
  }

  std::unique_ptr<SeqScanExecutor> ScanR() {
    return std::make_unique<SeqScanExecutor>(r_, &db_->buffer_pool(),
                                             &db_->meter());
  }
  std::unique_ptr<SeqScanExecutor> ScanS() {
    return std::make_unique<SeqScanExecutor>(s_, &db_->buffer_pool(),
                                             &db_->meter());
  }

  std::unique_ptr<Database> db_;
  TableInfo* r_ = nullptr;
  TableInfo* s_ = nullptr;
};

// ------------------------------------------------------------------ Sort

TEST_F(SortAggTest, SortAscendingAndDescending) {
  SortExecutor asc(ScanR(), {SortKey{1, false}}, &db_->meter());
  auto rows = DrainExecutor(&asc);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 400u);
  for (size_t i = 1; i < rows->size(); i++) {
    EXPECT_LE((*rows)[i - 1][1].AsInt64(), (*rows)[i][1].AsInt64());
  }

  SortExecutor desc(ScanR(), {SortKey{1, true}}, &db_->meter());
  rows = DrainExecutor(&desc);
  ASSERT_TRUE(rows.ok());
  for (size_t i = 1; i < rows->size(); i++) {
    EXPECT_GE((*rows)[i - 1][1].AsInt64(), (*rows)[i][1].AsInt64());
  }
}

TEST_F(SortAggTest, MultiKeySortTieBreaks) {
  SortExecutor sort(ScanR(), {SortKey{1, false}, SortKey{2, true}},
                    &db_->meter());
  auto rows = DrainExecutor(&sort);
  ASSERT_TRUE(rows.ok());
  for (size_t i = 1; i < rows->size(); i++) {
    int64_t a0 = (*rows)[i - 1][1].AsInt64(), a1 = (*rows)[i][1].AsInt64();
    ASSERT_LE(a0, a1);
    if (a0 == a1) {
      EXPECT_GE((*rows)[i - 1][2].AsDouble(), (*rows)[i][2].AsDouble());
    }
  }
}

TEST_F(SortAggTest, SmallSortStaysInMemory) {
  SortExecutor sort(ScanR(), {SortKey{0, false}}, &db_->meter());
  ASSERT_TRUE(DrainExecutor(&sort).ok());
  EXPECT_FALSE(sort.spilled());
}

TEST_F(SortAggTest, LargeSortChargesSpillIo) {
  // Shrink the memory budget so even this table spills.
  DatabaseOptions options;
  options.cost.hash_join_memory_pages = 1;
  Database tiny_mem(options);
  Schema schema({{"x", TypeId::kInt64}, {"pad", TypeId::kString}});
  ASSERT_TRUE(tiny_mem.CreateTable("t", schema).ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 2000; i++) {
    rows.push_back(Tuple{Value(int64_t{i % 97}),
                         Value(std::string(50, 'x'))});
  }
  ASSERT_TRUE(tiny_mem.BulkLoad("t", rows).ok());
  TableInfo* t = tiny_mem.catalog().GetTable("t");

  uint64_t writes_before = tiny_mem.meter().blocks_written();
  auto scan = std::make_unique<SeqScanExecutor>(t, &tiny_mem.buffer_pool(),
                                                &tiny_mem.meter());
  SortExecutor sort(std::move(scan), {SortKey{0, false}},
                    &tiny_mem.meter());
  ASSERT_TRUE(DrainExecutor(&sort).ok());
  EXPECT_TRUE(sort.spilled());
  EXPECT_GT(tiny_mem.meter().blocks_written(), writes_before);
}

// --------------------------------------------------------- SortMergeJoin

TEST_F(SortAggTest, SortMergeJoinMatchesHashJoin) {
  auto sorted_r = std::make_unique<SortExecutor>(
      ScanR(), std::vector<SortKey>{SortKey{0, false}}, &db_->meter());
  auto sorted_s = std::make_unique<SortExecutor>(
      ScanS(), std::vector<SortKey>{SortKey{1, false}}, &db_->meter());
  SortMergeJoinExecutor smj(std::move(sorted_r), std::move(sorted_s), 0, 1,
                            &db_->meter());
  auto smj_rows = DrainExecutor(&smj);
  ASSERT_TRUE(smj_rows.ok());

  HashJoinExecutor hash(ScanR(), ScanS(), 0, 1, &db_->meter());
  auto hash_rows = DrainExecutor(&hash);
  ASSERT_TRUE(hash_rows.ok());

  ASSERT_EQ(smj_rows->size(), hash_rows->size());
  EXPECT_EQ(smj_rows->size(), 1200u);
  // Every output row satisfies the join condition.
  for (const auto& row : *smj_rows) EXPECT_EQ(row[0], row[5]);
}

TEST_F(SortAggTest, SortMergeJoinDuplicateGroups) {
  // Join r and s on low-cardinality keys to force many-to-many groups.
  Rng rng(4);
  std::map<int64_t, int> left_counts, right_counts;
  auto sorted_r = std::make_unique<SortExecutor>(
      ScanR(), std::vector<SortKey>{SortKey{1, false}}, &db_->meter());
  auto sorted_s = std::make_unique<SortExecutor>(
      ScanS(), std::vector<SortKey>{SortKey{2, false}}, &db_->meter());
  // r_a in [0,100), s_c in [0,50): join r.r_a = s.s_c.
  SortMergeJoinExecutor smj(std::move(sorted_r), std::move(sorted_s), 1, 2,
                            &db_->meter());
  auto rows = DrainExecutor(&smj);
  ASSERT_TRUE(rows.ok());

  // Reference: count cross products per key.
  {
    auto scan = ScanR();
    ASSERT_TRUE(scan->Init().ok());
    for (;;) {
      auto row = scan->Next();
      ASSERT_TRUE(row.ok());
      if (!row->has_value()) break;
      left_counts[(**row)[1].AsInt64()]++;
    }
  }
  {
    auto scan = ScanS();
    ASSERT_TRUE(scan->Init().ok());
    for (;;) {
      auto row = scan->Next();
      ASSERT_TRUE(row.ok());
      if (!row->has_value()) break;
      right_counts[(**row)[2].AsInt64()]++;
    }
  }
  size_t expected = 0;
  for (const auto& [k, n] : left_counts) {
    auto it = right_counts.find(k);
    if (it != right_counts.end()) expected += n * it->second;
  }
  EXPECT_EQ(rows->size(), expected);
  EXPECT_GT(expected, 1000u);  // genuinely many-to-many
}

TEST_F(SortAggTest, SortMergeJoinEmptySides) {
  Schema schema({{"e", TypeId::kInt64}});
  ASSERT_TRUE(db_->CreateTable("empty", schema).ok());
  TableInfo* e = db_->catalog().GetTable("empty");
  auto scan_e = std::make_unique<SeqScanExecutor>(e, &db_->buffer_pool(),
                                                  &db_->meter());
  SortMergeJoinExecutor smj(std::move(scan_e), ScanR(), 0, 0, &db_->meter());
  auto rows = DrainExecutor(&smj);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

// -------------------------------------------------------------- Aggregate

TEST_F(SortAggTest, GlobalAggregates) {
  std::vector<AggSpec> specs = {
      {AggFunc::kCount, AggSpec::kStar, "count(*)"},
      {AggFunc::kSum, 1, "sum(r_a)"},
      {AggFunc::kAvg, 1, "avg(r_a)"},
      {AggFunc::kMin, 1, "min(r_a)"},
      {AggFunc::kMax, 1, "max(r_a)"},
  };
  HashAggregateExecutor agg(ScanR(), {}, specs, &db_->meter());
  auto rows = DrainExecutor(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  const Tuple& t = (*rows)[0];
  EXPECT_EQ(t[0].AsInt64(), 400);
  double sum = t[1].AsDouble();
  EXPECT_NEAR(t[2].AsDouble(), sum / 400, 1e-9);
  EXPECT_GE(t[3].AsInt64(), 0);
  EXPECT_LE(t[4].AsInt64(), 99);
  EXPECT_LE(t[3], t[4]);
}

TEST_F(SortAggTest, GroupByCountsMatchReference) {
  std::vector<AggSpec> specs = {{AggFunc::kCount, AggSpec::kStar,
                                 "count(*)"}};
  HashAggregateExecutor agg(ScanR(), {3}, specs, &db_->meter());
  auto rows = DrainExecutor(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);  // alpha / beta / gamma
  int64_t total = 0;
  for (const auto& row : *rows) total += row[1].AsInt64();
  EXPECT_EQ(total, 400);
}

TEST_F(SortAggTest, GlobalAggregateOverEmptyInput) {
  Schema schema({{"e", TypeId::kInt64}});
  ASSERT_TRUE(db_->CreateTable("empty", schema).ok());
  TableInfo* e = db_->catalog().GetTable("empty");
  auto scan = std::make_unique<SeqScanExecutor>(e, &db_->buffer_pool(),
                                                &db_->meter());
  std::vector<AggSpec> specs = {{AggFunc::kCount, AggSpec::kStar,
                                 "count(*)"}};
  HashAggregateExecutor agg(std::move(scan), {}, specs, &db_->meter());
  auto rows = DrainExecutor(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt64(), 0);
}

TEST_F(SortAggTest, LimitStopsEarly) {
  LimitExecutor limit(ScanR(), 7);
  auto rows = DrainExecutor(&limit);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 7u);
  LimitExecutor zero(ScanR(), 0);
  rows = DrainExecutor(&zero);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

// ------------------------------------------------------------ SQL surface

TEST_F(SortAggTest, SqlAggregateQuery) {
  ExecuteOptions opts;
  opts.keep_rows = true;
  auto result = db_->ExecuteSql(
      "SELECT r_s, COUNT(*), AVG(r_a) FROM r GROUP BY r_s ORDER BY r_s",
      opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->row_count, 3u);
  ASSERT_EQ(result->schema.size(), 3u);
  EXPECT_EQ(result->schema.column(1).name, "count(*)");
  EXPECT_EQ(result->rows[0][0].AsString(), "alpha");
  EXPECT_EQ(result->rows[1][0].AsString(), "beta");
  int64_t total = 0;
  for (const auto& row : result->rows) total += row[1].AsInt64();
  EXPECT_EQ(total, 400);
}

TEST_F(SortAggTest, SqlOrderByLimit) {
  ExecuteOptions opts;
  opts.keep_rows = true;
  auto result = db_->ExecuteSql(
      "SELECT * FROM r ORDER BY r_a DESC LIMIT 5", opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->row_count, 5u);
  for (size_t i = 1; i < result->rows.size(); i++) {
    EXPECT_GE(result->rows[i - 1][1].AsInt64(),
              result->rows[i][1].AsInt64());
  }
}

TEST_F(SortAggTest, SqlAggregateOverJoinUsesSpeculativeView) {
  QueryGraph def;
  def.AddJoin(RsJoin());
  def.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{10})));
  ASSERT_TRUE(db_->Materialize(def, "v").ok());

  ExecuteOptions opts;
  opts.keep_rows = true;
  opts.view_mode = ViewMode::kForced;
  auto result = db_->ExecuteSql(
      "SELECT COUNT(*), SUM(s_c) FROM r, s WHERE r_id = s_rid AND "
      "r_a < 10",
      opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->views_used.empty());  // SPJ core was rewritten

  opts.view_mode = ViewMode::kNone;
  auto base = db_->ExecuteSql(
      "SELECT COUNT(*), SUM(s_c) FROM r, s WHERE r_id = s_rid AND "
      "r_a < 10",
      opts);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(result->rows[0][0], base->rows[0][0]);
  EXPECT_EQ(result->rows[0][1], base->rows[0][1]);
}

TEST_F(SortAggTest, SqlValidation) {
  // Plain column not in GROUP BY.
  EXPECT_FALSE(
      db_->ExecuteSql("SELECT r_s, COUNT(*) FROM r GROUP BY r_a").ok());
  // SUM(*) is invalid.
  EXPECT_FALSE(db_->ExecuteSql("SELECT SUM(*) FROM r").ok());
  // Unknown ORDER BY column.
  EXPECT_FALSE(db_->ExecuteSql("SELECT * FROM r ORDER BY nope").ok());
  // LIMIT requires an integer.
  EXPECT_FALSE(db_->ExecuteSql("SELECT * FROM r LIMIT 1.5").ok());
  // Plain SPJ statements still work through ExecuteSql.
  EXPECT_TRUE(db_->ExecuteSql("SELECT r_a FROM r WHERE r_a < 5").ok());
}

}  // namespace
}  // namespace sqp
