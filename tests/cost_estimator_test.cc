// CardinalityEstimator: base statistics plumbing, histogram upgrades,
// the composite-join correlation fix, and cost formula monotonicity.
#include "optimizer/cost.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "test_util.h"
#include "workload/datagen.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::Sel;

class EstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reset(testutil::MakeTwoTableDb(2000, 6000));
    estimator_ = std::make_unique<CardinalityEstimator>(
        &db_->catalog(), db_->options().cost);
  }
  std::unique_ptr<Database> db_;
  std::unique_ptr<CardinalityEstimator> estimator_;
};

TEST_F(EstimatorTest, TableRowsAndPages) {
  EXPECT_DOUBLE_EQ(estimator_->TableRows("r"), 2000);
  EXPECT_DOUBLE_EQ(estimator_->TableRows("s"), 6000);
  EXPECT_GT(estimator_->TablePages("r"), 0);
  EXPECT_DOUBLE_EQ(estimator_->TableRows("missing"), 0);
}

TEST_F(EstimatorTest, SelectionSelectivityUniformFallback) {
  // r_a uniform in [0, 100): uniform interpolation is roughly right
  // even without a histogram.
  double sel = estimator_->SelectionSelectivity(
      "r", Sel("r", "r_a", CompareOp::kLt, Value(int64_t{25})));
  EXPECT_NEAR(sel, 0.25, 0.05);
}

TEST_F(EstimatorTest, HistogramImprovesSkewedEstimate) {
  // Build a skewed column, compare estimates with/without histogram.
  Schema schema({{"z", TypeId::kInt64}});
  ASSERT_TRUE(db_->CreateTable("zt", schema).ok());
  Rng rng(5);
  ZipfGenerator zipf(100, 1.1);
  std::vector<Tuple> rows;
  size_t below10 = 0;
  for (int i = 0; i < 20000; i++) {
    int64_t v = static_cast<int64_t>(zipf.Next(rng));
    if (v < 10) below10++;
    rows.push_back(Tuple{Value(v)});
  }
  ASSERT_TRUE(db_->BulkLoad("zt", rows).ok());
  double exact = static_cast<double>(below10) / 20000;

  auto pred = Sel("zt", "z", CompareOp::kLt, Value(int64_t{10}));
  double uniform = estimator_->SelectionSelectivity("zt", pred);
  ASSERT_TRUE(db_->CreateHistogram("zt", "z").ok());
  double with_hist = estimator_->SelectionSelectivity("zt", pred);
  EXPECT_LT(std::abs(with_hist - exact), std::abs(uniform - exact));
  EXPECT_NEAR(with_hist, exact, 0.05);
}

TEST_F(EstimatorTest, FkJoinCardinalityIsRightSized) {
  // r_id is r's key; every s row matches exactly one r: |join| = |s|.
  JoinPred j = testutil::RsJoin();
  double sel = estimator_->JoinSelectivity(j);
  double est = estimator_->TableRows("r") * estimator_->TableRows("s") * sel;
  EXPECT_NEAR(est, 6000, 600);
}

TEST_F(EstimatorTest, CompositeJoinAvoidsIndependenceCollapse) {
  // On the real TPC-H subset: lineitem ⋈ partsupp on (partkey, suppkey).
  DatabaseOptions options;
  options.buffer_pool_pages = 2048;
  Database tpch_db(options);
  tpch::LoadOptions load;
  load.scale = tpch::Scale::kSmall;
  ASSERT_TRUE(tpch::LoadTpch(&tpch_db, load).ok());
  CardinalityEstimator est(&tpch_db.catalog(), options.cost);

  std::vector<JoinPred> edges = {
      Join("lineitem", "l_partkey", "partsupp", "ps_partkey"),
      Join("lineitem", "l_suppkey", "partsupp", "ps_suppkey"),
  };
  double naive = est.JoinSelectivity(edges[0]) * est.JoinSelectivity(edges[1]);
  double composite = est.CompositeJoinSelectivity(edges);
  double rows_l = est.TableRows("lineitem");
  double rows_ps = est.TableRows("partsupp");
  // Truth: every lineitem matches exactly one partsupp row.
  double truth = rows_l;
  double naive_est = rows_l * rows_ps * naive;
  double composite_est = rows_l * rows_ps * composite;
  EXPECT_LT(naive_est, truth / 5);                    // collapses badly
  EXPECT_GT(composite_est, naive_est * 3);            // much closer
  EXPECT_NEAR(std::log10(composite_est), std::log10(truth), 1.0);
}

TEST_F(EstimatorTest, CompositeOfOneEdgeEqualsSingle) {
  JoinPred j = testutil::RsJoin();
  EXPECT_DOUBLE_EQ(estimator_->CompositeJoinSelectivity({j}),
                   estimator_->JoinSelectivity(j));
  EXPECT_DOUBLE_EQ(estimator_->CompositeJoinSelectivity({}), 1.0);
}

TEST_F(EstimatorTest, ScanCostsScaleWithSize) {
  EXPECT_GT(estimator_->SeqScanCost("s"), estimator_->SeqScanCost("r"));
  EXPECT_GT(estimator_->IndexScanCost("r", 1000),
            estimator_->IndexScanCost("r", 10));
  // A point lookup beats a full scan.
  EXPECT_LT(estimator_->IndexScanCost("r", 1),
            estimator_->SeqScanCost("r"));
}

TEST_F(EstimatorTest, PagesForRowsUsesWidth) {
  Schema narrow({{"a", TypeId::kInt64}});
  Schema wide({{"a", TypeId::kInt64},
               {"b", TypeId::kString},
               {"c", TypeId::kString},
               {"d", TypeId::kDouble}});
  EXPECT_LT(estimator_->PagesForRows(10000, narrow),
            estimator_->PagesForRows(10000, wide));
  EXPECT_DOUBLE_EQ(estimator_->PagesForRows(0, narrow), 0);
}

TEST_F(EstimatorTest, ScanOutputRowsMultipliesPredicates) {
  std::vector<SelectionPred> preds = {
      Sel("r", "r_a", CompareOp::kLt, Value(int64_t{50})),
      Sel("r", "r_b", CompareOp::kLt, Value(500.0)),
  };
  double both = estimator_->ScanOutputRows("r", preds);
  double one = estimator_->ScanOutputRows("r", {preds[0]});
  EXPECT_LT(both, one);
  EXPECT_GT(both, 0);
}

}  // namespace
}  // namespace sqp
