// Multi-user replay invariants: determinism, causality, completeness,
// and cross-user sharing semantics.
#include <gtest/gtest.h>

#include <memory>

#include "harness/multi_user_replayer.h"
#include "test_util.h"
#include "trace/trace_generator.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::RsJoin;
using testutil::Sel;

std::vector<Trace> SmallGroup(size_t n, uint64_t seed) {
  // Generated traces reference TPC-H tables; build two-table traces by
  // hand instead so the cheap test database suffices.
  std::vector<Trace> group;
  Rng rng(seed);
  for (size_t u = 0; u < n; u++) {
    Trace trace;
    trace.user_id = u;
    double t = rng.NextDouble(0, 3);
    for (int q = 0; q < 4; q++) {
      TraceEvent add;
      add.type = TraceEventType::kAddSelection;
      add.selection =
          Sel("r", "r_a", CompareOp::kLt, Value(rng.NextInt(5, 90)));
      add.timestamp = t;
      trace.events.push_back(add);
      bool with_join = rng.NextBool(0.5);
      if (with_join) {
        TraceEvent join;
        join.type = TraceEventType::kAddJoin;
        join.join = RsJoin();
        join.timestamp = t + 1;
        trace.events.push_back(join);
      }
      t += rng.NextDouble(4, 25);
      TraceEvent go;
      go.type = TraceEventType::kGo;
      go.timestamp = t;
      trace.events.push_back(go);
      // Clear the canvas for the next query.
      TraceEvent del = add;
      del.type = TraceEventType::kRemoveSelection;
      del.timestamp = t + 0.5;
      trace.events.push_back(del);
      if (with_join) {
        TraceEvent deljoin;
        deljoin.type = TraceEventType::kRemoveJoin;
        deljoin.join = RsJoin();
        deljoin.timestamp = t + 0.6;
        trace.events.push_back(deljoin);
      }
      t += rng.NextDouble(1, 5);
    }
    group.push_back(std::move(trace));
  }
  return group;
}

class MultiUserInvariants : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reset(testutil::MakeTwoTableDb(2000, 6000, 11, 128));
  }
  std::unique_ptr<Database> db_;
};

TEST_F(MultiUserInvariants, DeterministicAcrossRuns) {
  auto group = SmallGroup(3, 5);
  MultiUserReplayOptions options;
  options.speculation = true;
  auto a = MultiUserReplayer(db_.get(), options).Replay(group);
  auto b = MultiUserReplayer(db_.get(), options).Replay(group);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->per_user.size(), b->per_user.size());
  for (size_t u = 0; u < a->per_user.size(); u++) {
    ASSERT_EQ(a->per_user[u].size(), b->per_user[u].size());
    for (size_t q = 0; q < a->per_user[u].size(); q++) {
      EXPECT_NEAR(a->per_user[u][q].seconds, b->per_user[u][q].seconds,
                  1e-9);
    }
  }
  EXPECT_NEAR(a->session_end_time, b->session_end_time, 1e-9);
}

TEST_F(MultiUserInvariants, EveryQueryExecutedOncePerUser) {
  auto group = SmallGroup(3, 7);
  MultiUserReplayOptions options;
  options.speculation = false;
  auto result = MultiUserReplayer(db_.get(), options).Replay(group);
  ASSERT_TRUE(result.ok());
  for (size_t u = 0; u < group.size(); u++) {
    EXPECT_EQ(result->per_user[u].size(), group[u].QueryCount());
  }
}

TEST_F(MultiUserInvariants, PerUserTimesAreCausal) {
  auto group = SmallGroup(3, 9);
  MultiUserReplayOptions options;
  options.speculation = true;
  auto result = MultiUserReplayer(db_.get(), options).Replay(group);
  ASSERT_TRUE(result.ok());
  for (const auto& user : result->per_user) {
    double prev_go = -1;
    for (const auto& q : user) {
      EXPECT_GT(q.go_sim_time, prev_go);
      EXPECT_GT(q.seconds, 0);
      prev_go = q.go_sim_time;
    }
  }
}

TEST_F(MultiUserInvariants, SpeculativeViewsSharedAcrossUsers) {
  // All three users pose the same query shape: once one user's
  // manipulation completes, others' final queries may be rewritten with
  // it (the paper's shared-database semantics).
  std::vector<Trace> group;
  for (int u = 0; u < 3; u++) {
    Trace trace;
    trace.user_id = u;
    TraceEvent add;
    add.type = TraceEventType::kAddSelection;
    add.selection = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
    add.timestamp = 1.0 + u;  // staggered starts
    trace.events.push_back(add);
    TraceEvent go;
    go.type = TraceEventType::kGo;
    go.timestamp = 40.0 + u;
    trace.events.push_back(go);
    group.push_back(std::move(trace));
  }
  MultiUserReplayOptions options;
  options.speculation = true;
  auto result = MultiUserReplayer(db_.get(), options).Replay(group);
  ASSERT_TRUE(result.ok());
  size_t rewritten_users = 0;
  for (const auto& user : result->per_user) {
    ASSERT_EQ(user.size(), 1u);
    if (!user[0].views_used.empty()) rewritten_users++;
  }
  // At minimum the users whose manipulation completed get the rewrite;
  // typically all three (shared registry).
  EXPECT_GE(rewritten_users, 2u);
}

}  // namespace
}  // namespace sqp
