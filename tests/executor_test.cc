// Executors: each operator against hand-computed or brute-force
// reference results.
#include "exec/executors.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "exec/materializer.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::Sel;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reset(testutil::MakeTwoTableDb(300, 900, /*seed=*/3));
    r_ = db_->catalog().GetTable("r");
    s_ = db_->catalog().GetTable("s");
    ASSERT_NE(r_, nullptr);
    ASSERT_NE(s_, nullptr);
  }

  std::vector<Tuple> AllRows(const TableInfo* table) {
    std::vector<Tuple> rows;
    auto iter = table->heap->Scan();
    for (;;) {
      auto row = iter.Next();
      EXPECT_TRUE(row.ok());
      if (!row->has_value()) break;
      rows.push_back(**row);
    }
    return rows;
  }

  std::unique_ptr<Database> db_;
  TableInfo* r_ = nullptr;
  TableInfo* s_ = nullptr;
};

TEST_F(ExecutorTest, SeqScanReturnsEverything) {
  SeqScanExecutor scan(r_, &db_->buffer_pool(), &db_->meter());
  auto rows = DrainExecutor(&scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 300u);
}

TEST_F(ExecutorTest, SeqScanWithPushedPredicate) {
  auto pred = BindSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{50})),
                            r_->schema);
  ASSERT_TRUE(pred.ok());
  SeqScanExecutor scan(r_, &db_->buffer_pool(), &db_->meter(), {*pred});
  auto rows = DrainExecutor(&scan);
  ASSERT_TRUE(rows.ok());
  size_t expected = 0;
  for (const auto& t : AllRows(r_)) {
    if (t[1].AsInt64() < 50) expected++;
  }
  EXPECT_EQ(rows->size(), expected);
  EXPECT_GT(rows->size(), 0u);
  EXPECT_LT(rows->size(), 300u);
}

TEST_F(ExecutorTest, IndexScanMatchesSeqScanFilter) {
  ASSERT_TRUE(db_->CreateIndex("r", "r_a").ok());
  BPlusTree* index = db_->catalog().GetIndex("r", "r_a");
  ASSERT_NE(index, nullptr);

  KeyRange range{Value(int64_t{20}), true, Value(int64_t{40}), false};
  IndexScanExecutor scan(r_, index, range, &db_->buffer_pool(),
                         &db_->meter());
  auto rows = DrainExecutor(&scan);
  ASSERT_TRUE(rows.ok());

  size_t expected = 0;
  for (const auto& t : AllRows(r_)) {
    int64_t v = t[1].AsInt64();
    if (v >= 20 && v < 40) expected++;
  }
  EXPECT_EQ(rows->size(), expected);
}

TEST_F(ExecutorTest, IndexScanWithResidualPredicate) {
  ASSERT_TRUE(db_->CreateIndex("r", "r_a").ok());
  BPlusTree* index = db_->catalog().GetIndex("r", "r_a");
  auto residual = BindSelection(Sel("r", "r_b", CompareOp::kLt, Value(500.0)),
                                r_->schema);
  ASSERT_TRUE(residual.ok());
  IndexScanExecutor scan(r_, index, KeyRange::Exactly(Value(int64_t{10})),
                         &db_->buffer_pool(), &db_->meter(), {*residual});
  auto rows = DrainExecutor(&scan);
  ASSERT_TRUE(rows.ok());
  for (const auto& t : *rows) {
    EXPECT_EQ(t[1].AsInt64(), 10);
    EXPECT_LT(t[2].AsDouble(), 500.0);
  }
}

TEST_F(ExecutorTest, FilterExecutor) {
  auto pred = BindSelection(Sel("r", "r_s", CompareOp::kEq, Value("alpha")),
                            r_->schema);
  ASSERT_TRUE(pred.ok());
  auto scan = std::make_unique<SeqScanExecutor>(r_, &db_->buffer_pool(),
                                                &db_->meter());
  FilterExecutor filter(std::move(scan), {*pred}, &db_->meter());
  auto rows = DrainExecutor(&filter);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 100u);  // 300 rows cycling 3 strings
  for (const auto& t : *rows) EXPECT_EQ(t[3].AsString(), "alpha");
}

TEST_F(ExecutorTest, ProjectExecutor) {
  auto scan = std::make_unique<SeqScanExecutor>(r_, &db_->buffer_pool(),
                                                &db_->meter());
  ProjectExecutor project(std::move(scan), {1, 3}, &db_->meter());
  EXPECT_EQ(project.output_schema().size(), 2u);
  EXPECT_EQ(project.output_schema().column(0).name, "r_a");
  auto rows = DrainExecutor(&project);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 300u);
  EXPECT_EQ((*rows)[0].size(), 2u);
}

TEST_F(ExecutorTest, HashJoinMatchesBruteForce) {
  auto r_scan = std::make_unique<SeqScanExecutor>(r_, &db_->buffer_pool(),
                                                  &db_->meter());
  auto s_scan = std::make_unique<SeqScanExecutor>(s_, &db_->buffer_pool(),
                                                  &db_->meter());
  // r.r_id (idx 0) = s.s_rid (idx 1)
  HashJoinExecutor join(std::move(r_scan), std::move(s_scan), 0, 1,
                        &db_->meter());
  EXPECT_EQ(join.output_schema().size(), 7u);
  auto rows = DrainExecutor(&join);
  ASSERT_TRUE(rows.ok());

  size_t expected = 0;
  auto r_rows = AllRows(r_);
  auto s_rows = AllRows(s_);
  for (const auto& a : r_rows) {
    for (const auto& b : s_rows) {
      if (a[0] == b[1]) expected++;
    }
  }
  EXPECT_EQ(rows->size(), expected);
  EXPECT_EQ(expected, 900u);  // every s row matches exactly one r
  for (const auto& t : *rows) EXPECT_EQ(t[0], t[5]);  // join key equal
}

TEST_F(ExecutorTest, HashJoinEmptySides) {
  Schema empty_schema({{"e", TypeId::kInt64}});
  ASSERT_TRUE(db_->CreateTable("empty", empty_schema).ok());
  TableInfo* empty = db_->catalog().GetTable("empty");

  auto e1 = std::make_unique<SeqScanExecutor>(empty, &db_->buffer_pool(),
                                              &db_->meter());
  auto r1 = std::make_unique<SeqScanExecutor>(r_, &db_->buffer_pool(),
                                              &db_->meter());
  HashJoinExecutor join(std::move(e1), std::move(r1), 0, 0, &db_->meter());
  auto rows = DrainExecutor(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(ExecutorTest, NestedLoopCrossProduct) {
  Schema tiny({{"t_x", TypeId::kInt64}});
  ASSERT_TRUE(db_->CreateTable("tiny", tiny).ok());
  std::vector<Tuple> rows = {Tuple{Value(int64_t{1})},
                             Tuple{Value(int64_t{2})}};
  ASSERT_TRUE(db_->BulkLoad("tiny", rows).ok());
  TableInfo* t = db_->catalog().GetTable("tiny");

  auto t_scan = std::make_unique<SeqScanExecutor>(t, &db_->buffer_pool(),
                                                  &db_->meter());
  auto r_scan = std::make_unique<SeqScanExecutor>(r_, &db_->buffer_pool(),
                                                  &db_->meter());
  NestedLoopJoinExecutor cross(std::move(t_scan), std::move(r_scan), {},
                               &db_->meter());
  auto out = DrainExecutor(&cross);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 600u);  // 2 x 300
}

TEST_F(ExecutorTest, ColumnFilterAppliesCondition) {
  // Join r x s then require r_id == s_rid via ColumnFilter on a cross
  // product — must equal the hash join result count.
  auto r_scan = std::make_unique<SeqScanExecutor>(r_, &db_->buffer_pool(),
                                                  &db_->meter());
  auto s_scan = std::make_unique<SeqScanExecutor>(s_, &db_->buffer_pool(),
                                                  &db_->meter());
  auto cross = std::make_unique<NestedLoopJoinExecutor>(
      std::move(r_scan), std::move(s_scan),
      std::vector<NestedLoopJoinExecutor::JoinCondition>{}, &db_->meter());
  ColumnFilterExecutor filter(
      std::move(cross), {ColumnFilterExecutor::Condition{0, 5, CompareOp::kEq}},
      &db_->meter());
  auto rows = DrainExecutor(&filter);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 900u);
}

TEST_F(ExecutorTest, MaterializerCreatesTableWithStats) {
  auto pred = BindSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{30})),
                            r_->schema);
  ASSERT_TRUE(pred.ok());
  SeqScanExecutor scan(r_, &db_->buffer_pool(), &db_->meter(), {*pred});
  auto table = MaterializeInto(&db_->catalog(), &db_->buffer_pool(),
                               &db_->meter(), &scan, "r_small");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->is_materialized);
  EXPECT_GT((*table)->stats.row_count(), 0u);
  EXPECT_LT((*table)->stats.row_count(), 300u);
  EXPECT_EQ((*table)->schema.size(), r_->schema.size());
  // Stats populated: max r_a below the predicate constant.
  auto idx = (*table)->schema.ColumnIndex("r_a");
  ASSERT_TRUE(idx.has_value());
  EXPECT_LT((*table)->stats.column(*idx).max->AsInt64(), 30);
}

TEST_F(ExecutorTest, MaterializerRejectsDuplicateName) {
  SeqScanExecutor scan(r_, &db_->buffer_pool(), &db_->meter());
  auto first = MaterializeInto(&db_->catalog(), &db_->buffer_pool(),
                               &db_->meter(), &scan, "dup");
  ASSERT_TRUE(first.ok());
  SeqScanExecutor scan2(r_, &db_->buffer_pool(), &db_->meter());
  auto second = MaterializeInto(&db_->catalog(), &db_->buffer_pool(),
                                &db_->meter(), &scan2, "dup");
  EXPECT_FALSE(second.ok());
}

TEST_F(ExecutorTest, ExecutorsChargeCpuWork) {
  uint64_t before = db_->meter().tuples_processed();
  SeqScanExecutor scan(r_, &db_->buffer_pool(), &db_->meter());
  ASSERT_TRUE(DrainExecutor(&scan).ok());
  EXPECT_GE(db_->meter().tuples_processed() - before, 300u);
}

}  // namespace
}  // namespace sqp
