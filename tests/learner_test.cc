// Learner components: survival learning, cross-query retention, and the
// conditional think-time model.
#include "speculation/learner.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::Sel;

ObservedPart SelPart(const char* table, const char* column) {
  ObservedPart part;
  part.is_join = false;
  part.selection = Sel(table, column, CompareOp::kLt, Value(int64_t{5}));
  return part;
}

ObservedPart JoinPart() {
  ObservedPart part;
  part.is_join = true;
  part.join = Join("r", "r_id", "s", "s_rid");
  return part;
}

std::map<std::string, ObservedPart> SeenOf(
    std::initializer_list<ObservedPart> parts) {
  std::map<std::string, ObservedPart> seen;
  for (const auto& p : parts) {
    seen[p.is_join ? p.join.Key() : p.selection.Key()] = p;
  }
  return seen;
}

TEST(SurvivalLearnerTest, PriorsAreModeratelyOptimistic) {
  SurvivalLearner learner;
  EXPECT_NEAR(learner.SurvivalProbability(SelPart("r", "r_a")), 0.7, 0.1);
  EXPECT_NEAR(learner.SurvivalProbability(JoinPart()), 0.9, 0.1);
}

TEST(SurvivalLearnerTest, LearnsPerFeatureHabits) {
  SurvivalLearner learner;
  ObservedPart kept = SelPart("r", "r_a");
  ObservedPart dropped = SelPart("s", "s_c");
  QueryGraph final_with_kept;
  final_with_kept.AddSelection(kept.selection);
  for (int i = 0; i < 30; i++) {
    learner.ObserveFormulation(SeenOf({kept, dropped}), final_with_kept);
  }
  EXPECT_GT(learner.SurvivalProbability(kept), 0.85);
  EXPECT_LT(learner.SurvivalProbability(dropped), 0.35);
  EXPECT_EQ(learner.observed_formulations(), 30u);
}

TEST(SurvivalLearnerTest, ContainmentIsProductOfParts) {
  SurvivalLearner learner;
  QueryGraph qm;
  qm.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  double p1 = learner.ContainmentProbability(qm);
  qm.AddJoin(Join("r", "r_id", "s", "s_rid"));
  double p2 = learner.ContainmentProbability(qm);
  EXPECT_LT(p2, p1);  // more parts, lower joint survival
  EXPECT_GT(p2, 0);
  EXPECT_DOUBLE_EQ(learner.ContainmentProbability(QueryGraph()), 1.0);
}

TEST(RetentionLearnerTest, LearnsFromTransitions) {
  RetentionLearner learner;
  QueryGraph with_sel;
  with_sel.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  QueryGraph without;
  // Selection always dropped between queries.
  for (int i = 0; i < 50; i++) {
    learner.ObserveTransition(with_sel, without);
  }
  EXPECT_LT(learner.RetentionProbability(false), 0.15);
  // Join prior untouched.
  EXPECT_NEAR(learner.RetentionProbability(true), 0.9, 0.05);
}

TEST(RetentionLearnerTest, ExpectedUsesGrowsWithHorizonAndRetention) {
  RetentionLearner learner;
  QueryGraph sel_graph;
  sel_graph.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5})));
  QueryGraph join_graph;
  join_graph.AddJoin(Join("r", "r_id", "s", "s_rid"));

  EXPECT_DOUBLE_EQ(learner.ExpectedUses(sel_graph, 1), 1.0);
  double u2 = learner.ExpectedUses(sel_graph, 2);
  double u8 = learner.ExpectedUses(sel_graph, 8);
  EXPECT_GT(u2, 1.0);
  EXPECT_GT(u8, u2);
  // Joins are retained longer, so join views amortize further.
  EXPECT_GT(learner.ExpectedUses(join_graph, 8),
            learner.ExpectedUses(sel_graph, 8));
}

TEST(ThinkTimeLearnerTest, UnconditionalCompletionProbability) {
  ThinkTimeLearner learner;  // seeded with the paper's profile
  // A 1-second manipulation at formulation start: very likely to finish
  // (median formulation is ~11s).
  EXPECT_GT(learner.ProbCompleteInTime(0, 1.0), 0.75);
  // A 100-second manipulation: unlikely.
  EXPECT_LT(learner.ProbCompleteInTime(0, 100.0), 0.3);
}

TEST(ThinkTimeLearnerTest, ProbabilityDecreasesWithDuration) {
  ThinkTimeLearner learner;
  double prev = 1.0;
  for (double d : {0.5, 2.0, 8.0, 32.0, 128.0}) {
    double p = learner.ProbCompleteInTime(5.0, d);
    EXPECT_LE(p, prev + 1e-9);
    prev = p;
  }
}

TEST(ThinkTimeLearnerTest, LearnsFromObservations) {
  ThinkTimeLearner learner;
  // A user with very long formulations (~200s).
  for (int i = 0; i < 200; i++) learner.ObserveDuration(200.0);
  EXPECT_GT(learner.ProbCompleteInTime(0, 50.0), 0.8);
  // And one with very short ones.
  ThinkTimeLearner quick;
  for (int i = 0; i < 200; i++) quick.ObserveDuration(2.0);
  EXPECT_LT(quick.ProbCompleteInTime(0, 50.0), 0.2);
}

TEST(LearnerFacadeTest, ObserveGoTrainsAllComponents) {
  Learner learner;
  ObservedPart part = SelPart("r", "r_a");
  QueryGraph final_query;
  final_query.AddSelection(part.selection);
  QueryGraph previous;  // empty
  double p_before = learner.survival().SurvivalProbability(part);
  learner.ObserveGo(SeenOf({part}), final_query, &previous, 12.0);
  double p_after = learner.survival().SurvivalProbability(part);
  EXPECT_GT(p_after, p_before);
  EXPECT_EQ(learner.survival().observed_formulations(), 1u);
}

TEST(BetaCounterTest, DecayForgetsOldEvidence) {
  BetaCounter counter(1, 2);
  for (int i = 0; i < 100; i++) counter.Observe(true);
  EXPECT_GT(counter.Mean(), 0.9);
  for (int i = 0; i < 100; i++) counter.Observe(false);
  EXPECT_LT(counter.Mean(), 0.15);  // recent evidence dominates
}

}  // namespace
}  // namespace sqp
