// Crash-restart durability (DESIGN.md §8): the write-cache + sync
// model, page checksums, manifest replay, and the engine's recovery
// hook. Ends with a randomized crash-schedule chaos harness asserting
// the three recovery invariants: committed results are bit-identical to
// a crash-free run, torn pages are always detected and never served,
// and recovery leaves zero orphan pages.
#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/metrics_registry.h"
#include "common/metrics_timeline.h"
#include "db/database.h"
#include "db/manifest.h"
#include "sim/sim_server.h"
#include "speculation/engine.h"
#include "test_util.h"
#include "trace/trace.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::RsJoin;
using testutil::Sel;

// ------------------------------------------------ disk durability model

class DiskCrashTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  Page* Scratch() {
    scratch_.Init();
    return &scratch_;
  }

  CostMeter meter_;
  Page scratch_;
};

TEST_F(DiskCrashTest, StatusGuardsReplaceAsserts) {
  DiskManager disk(&meter_);
  EXPECT_EQ(disk.ReadPage(7, Scratch()).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.WritePage(7, *Scratch()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(disk.DeallocatePage(7).code(), StatusCode::kInvalidArgument);

  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(disk.DeallocatePage(*id).ok());
  // Operations on a dead page are kNotFound, not UB.
  EXPECT_EQ(disk.DeallocatePage(*id).code(), StatusCode::kNotFound);
  EXPECT_EQ(disk.ReadPage(*id, Scratch()).code(), StatusCode::kNotFound);
  EXPECT_EQ(disk.WritePage(*id, *Scratch()).code(), StatusCode::kNotFound);
}

TEST_F(DiskCrashTest, SyncedWritesSurviveCrashUnsyncedTear) {
  DiskManager disk(&meter_);
  auto a = disk.AllocatePage();
  auto b = disk.AllocatePage();
  ASSERT_TRUE(a.ok() && b.ok());

  Page page;
  page.Init();
  page.Insert(reinterpret_cast<const uint8_t*>("durable"), 7);
  ASSERT_TRUE(disk.WritePage(*a, page).ok());
  ASSERT_TRUE(disk.Sync().ok());

  // An in-flight write to b at crash time: it tears (half the write
  // reaches the durable image, the checksum stays stale).
  Page flight;
  flight.Init();
  flight.Insert(reinterpret_cast<const uint8_t*>("in-flight"), 9);
  ASSERT_TRUE(disk.WritePage(*b, flight).ok());
  EXPECT_EQ(disk.unsynced_pages(), 1u);
  disk.SimulateCrash();
  disk.Restart();

  // The synced page is intact; the torn page is detected, never served.
  Page out;
  out.Init();
  ASSERT_TRUE(disk.ReadPage(*a, &out).ok());
  EXPECT_EQ(out.slot_count(), 1);
  Status torn = disk.ReadPage(*b, &out);
  EXPECT_EQ(torn.code(), StatusCode::kDataLoss);
  EXPECT_EQ(disk.torn_pages(), 1u);
  EXPECT_GE(disk.checksum_failures(), 1u);
}

TEST_F(DiskCrashTest, OlderUnsyncedWritesAreCleanlyLost) {
  DiskManager disk(&meter_);
  auto a = disk.AllocatePage();
  auto b = disk.AllocatePage();
  ASSERT_TRUE(a.ok() && b.ok());

  Page v1;
  v1.Init();
  v1.Insert(reinterpret_cast<const uint8_t*>("v1"), 2);
  ASSERT_TRUE(disk.WritePage(*a, v1).ok());
  ASSERT_TRUE(disk.Sync().ok());

  // A newer version of a sits in the cache, but the *last* in-flight
  // write is to b — so a's update is cleanly discarded, not torn.
  Page v2 = v1;
  v2.Insert(reinterpret_cast<const uint8_t*>("v2"), 2);
  ASSERT_TRUE(disk.WritePage(*a, v2).ok());
  ASSERT_TRUE(disk.WritePage(*b, v1).ok());
  disk.SimulateCrash();
  disk.Restart();

  Page out;
  out.Init();
  ASSERT_TRUE(disk.ReadPage(*a, &out).ok());
  EXPECT_EQ(out.slot_count(), 1);  // v1, not v2
}

TEST_F(DiskCrashTest, CrashedDiskRefusesEverythingUntilRestart) {
  DiskManager disk(&meter_);
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  disk.SimulateCrash();
  EXPECT_TRUE(disk.has_crashed());
  EXPECT_EQ(disk.AllocatePage().status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(disk.ReadPage(*id, Scratch()).code(), StatusCode::kDataLoss);
  EXPECT_EQ(disk.WritePage(*id, *Scratch()).code(), StatusCode::kDataLoss);
  EXPECT_EQ(disk.Sync().code(), StatusCode::kDataLoss);
  EXPECT_EQ(disk.DeallocatePage(*id).code(), StatusCode::kDataLoss);
  disk.Restart();
  EXPECT_FALSE(disk.has_crashed());
  EXPECT_TRUE(disk.ReadPage(*id, Scratch()).ok());
}

TEST_F(DiskCrashTest, CrashFaultPointKillsTheDiskMidWrite) {
  DiskManager disk(&meter_);
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  FaultSpec spec = FaultSpec::OneShot(1, StatusCode::kDataLoss);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("disk.crash", spec);
  Page page;
  page.Init();
  page.Insert(reinterpret_cast<const uint8_t*>("doomed"), 6);
  Status write = disk.WritePage(*id, page);
  EXPECT_EQ(write.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(disk.has_crashed());
  // The in-flight write became the tear candidate.
  disk.Restart();
  Page out;
  out.Init();
  EXPECT_EQ(disk.ReadPage(*id, &out).code(), StatusCode::kDataLoss);
}

// ------------------------------------------------------------- manifest

TEST(ManifestTest, CommitIsAtomic) {
  Manifest manifest;
  Schema schema({{"x", TypeId::kInt64}});
  manifest.Append(ManifestRecord::CreateTable("t", schema, false));
  manifest.Append(ManifestRecord::BulkLoadCommit("t", {0, 1}, 10));
  EXPECT_EQ(manifest.staged_count(), 2u);
  EXPECT_EQ(manifest.committed_count(), 0u);

  // A crash discards the whole staged group...
  manifest.DropUncommitted();
  EXPECT_EQ(manifest.staged_count(), 0u);
  EXPECT_EQ(manifest.committed_count(), 0u);

  // ...and a commit makes it durable as one unit.
  manifest.Append(ManifestRecord::CreateTable("t", schema, false));
  manifest.Append(ManifestRecord::BulkLoadCommit("t", {0, 1}, 10));
  manifest.Commit();
  EXPECT_EQ(manifest.committed_count(), 2u);
  manifest.Append(ManifestRecord::DropTable("t"));
  manifest.DropUncommitted();
  EXPECT_EQ(manifest.committed_count(), 2u);
}

TEST(ManifestTest, FoldSupersedesAndDropsDependents) {
  Schema schema({{"x", TypeId::kInt64}});
  std::vector<ManifestRecord> records;
  records.push_back(ManifestRecord::CreateTable("t", schema, false));
  records.push_back(ManifestRecord::BulkLoadCommit("t", {0, 1}, 10));
  records.push_back(ManifestRecord::CreateIndex("t", "x"));
  records.push_back(ManifestRecord::CreateHistogram("t", "x"));
  // A later load supersedes the earlier page list; the index is dropped.
  records.push_back(ManifestRecord::BulkLoadCommit("t", {0, 1, 2}, 15));
  records.push_back(ManifestRecord::DropIndex("t", "x"));

  ManifestFoldResult fold = FoldManifest(records);
  ASSERT_EQ(fold.tables.size(), 1u);
  const ManifestTableState& state = fold.tables[0].second;
  EXPECT_EQ(state.pages, (std::vector<page_id_t>{0, 1, 2}));
  EXPECT_EQ(state.tuple_count, 15u);
  EXPECT_TRUE(state.index_columns.empty());
  EXPECT_EQ(state.histogram_columns,
            (std::vector<std::string>{"x"}));

  records.push_back(ManifestRecord::DropTable("t"));
  EXPECT_TRUE(FoldManifest(records).tables.empty());
}

// --------------------------------------------------- database recovery

/// Sum of heap pages across every catalog table: recovery's "no orphan
/// pages" invariant states this equals the disk's live-page count.
uint64_t CatalogPages(const Database& db) {
  uint64_t total = 0;
  for (const auto& name : db.catalog().TableNames()) {
    total += db.catalog().GetTable(name)->heap->page_count();
  }
  return total;
}

/// Order-insensitive row rendering (plan-independent): columns sorted by
/// name, rows sorted lexicographically.
std::vector<std::string> RowSet(const QueryResult& result) {
  std::vector<size_t> order(result.schema.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result.schema.column(a).name < result.schema.column(b).name;
  });
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Tuple& tuple : result.rows) {
    std::string s;
    for (size_t i : order) {
      s += result.schema.column(i).name;
      s += '=';
      s += tuple[i].ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class DatabaseCrashTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  QueryGraph JoinQuery() {
    QueryGraph q;
    q.AddJoin(RsJoin());
    q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{40})));
    return q;
  }
};

TEST_F(DatabaseCrashTest, ReopenRestoresCommittedStateBitIdentically) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(400, 1200));
  ASSERT_TRUE(db->CreateIndex("r", "r_a").ok());
  ASSERT_TRUE(db->CreateHistogram("s", "s_c").ok());

  ExecuteOptions exec;
  exec.keep_rows = true;
  auto before = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(before.ok());
  const uint64_t pages_before = db->disk_manager().live_pages();

  db->SimulateCrash();
  ASSERT_TRUE(db->Reopen().ok());
  const RecoveryStats& stats = db->last_recovery();
  EXPECT_EQ(stats.tables_recovered, 2u);
  EXPECT_EQ(stats.indexes_rebuilt, 1u);
  EXPECT_EQ(stats.histograms_rebuilt, 1u);
  EXPECT_EQ(stats.corrupt_matviews_dropped, 0u);
  EXPECT_EQ(stats.orphan_pages_collected, 0u);
  EXPECT_TRUE(db->catalog().HasIndex("r", "r_a"));
  EXPECT_NE(db->catalog().GetHistogram("s", "s_c"), nullptr);
  EXPECT_EQ(db->disk_manager().live_pages(), pages_before);

  auto after = db->Execute(JoinQuery(), exec);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(RowSet(*after), RowSet(*before));
}

TEST_F(DatabaseCrashTest, CrashMidBulkLoadKeepsTheCommittedVersion) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(300, 900));
  const uint64_t committed_rows =
      db->catalog().GetTable("s")->heap->tuple_count();
  const uint64_t pages_before = db->disk_manager().live_pages();

  // A second load into a *fresh* table dies with writes in flight.
  Schema schema({{"x", TypeId::kInt64}, {"y", TypeId::kInt64}});
  ASSERT_TRUE(db->CreateTable("incoming", schema).ok());
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 4000; i++) {
    rows.push_back(Tuple{Value(i), Value(i * 2)});
  }
  FaultSpec spec = FaultSpec::OneShot(2, StatusCode::kDataLoss);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("disk.crash", spec);
  Status load = db->BulkLoad("incoming", rows);
  ASSERT_FALSE(load.ok());
  ASSERT_TRUE(db->disk_manager().has_crashed());
  FaultInjector::Global().Reset();

  ASSERT_TRUE(db->Reopen().ok());
  // The committed CreateTable survives; the uncommitted load does not.
  const TableInfo* incoming = db->catalog().GetTable("incoming");
  ASSERT_NE(incoming, nullptr);
  EXPECT_EQ(incoming->heap->tuple_count(), 0u);
  // Its half-written pages were orphans: collected without being read.
  EXPECT_GT(db->last_recovery().orphan_pages_collected, 0u);
  EXPECT_EQ(db->disk_manager().live_pages(), pages_before);
  // The pre-existing tables are untouched.
  EXPECT_EQ(db->catalog().GetTable("s")->heap->tuple_count(),
            committed_rows);

  // The load can simply be retried after recovery.
  ASSERT_TRUE(db->BulkLoad("incoming", rows).ok());
  EXPECT_EQ(db->catalog().GetTable("incoming")->heap->tuple_count(),
            rows.size());
}

TEST_F(DatabaseCrashTest, CrashMidMaterializeLeavesNoCommittedTrace) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(400, 1200));
  const uint64_t pages_before = db->disk_manager().live_pages();

  FaultSpec spec = FaultSpec::OneShot(3, StatusCode::kDataLoss);
  spec.only_in_region = false;
  FaultInjector::Global().Arm("disk.crash", spec);
  auto result = db->Materialize(JoinQuery(), "mv_doomed");
  ASSERT_FALSE(result.ok());
  FaultInjector::Global().Reset();

  ASSERT_TRUE(db->Reopen().ok());
  EXPECT_EQ(db->catalog().GetTable("mv_doomed"), nullptr);
  EXPECT_FALSE(db->views().Contains("mv_doomed"));
  EXPECT_GT(db->last_recovery().orphan_pages_collected, 0u);
  EXPECT_EQ(db->disk_manager().live_pages(), pages_before);
  EXPECT_EQ(CatalogPages(*db), pages_before);
}

TEST_F(DatabaseCrashTest, TornCommittedMatviewIsDroppedAtRecovery) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(400, 1200));
  const uint64_t base_pages = db->disk_manager().live_pages();
  ASSERT_TRUE(db->Materialize(JoinQuery(), "mv_torn").ok());
  const TableInfo* mv = db->catalog().GetTable("mv_torn");
  ASSERT_NE(mv, nullptr);
  ASSERT_FALSE(mv->heap->pages().empty());
  const page_id_t victim = mv->heap->pages().front();

  // Rewrite one committed matview page; crash with the write in flight
  // so it tears (half-new bytes under the old checksum).
  auto page = db->buffer_pool().FetchPage(victim);
  ASSERT_TRUE(page.ok());
  (*page)->Insert(reinterpret_cast<const uint8_t*>("garbage"), 7);
  db->buffer_pool().UnpinPage(victim, /*dirty=*/true);
  ASSERT_TRUE(db->buffer_pool().FlushPage(victim).ok());
  db->SimulateCrash();
  EXPECT_EQ(db->disk_manager().torn_pages(), 1u);

  ASSERT_TRUE(db->Reopen().ok());
  // The torn page was detected during validation; the matview is
  // disposable, so recovery dropped it instead of failing.
  EXPECT_EQ(db->last_recovery().corrupt_matviews_dropped, 1u);
  EXPECT_GE(db->last_recovery().torn_pages_detected, 1u);
  EXPECT_EQ(db->catalog().GetTable("mv_torn"), nullptr);
  EXPECT_FALSE(db->views().Contains("mv_torn"));
  EXPECT_EQ(db->disk_manager().live_pages(), base_pages);

  // Queries keep working (without the view).
  ExecuteOptions exec;
  exec.keep_rows = true;
  EXPECT_TRUE(db->Execute(JoinQuery(), exec).ok());
}

TEST_F(DatabaseCrashTest, TornBaseTableIsUnrecoverableDataLoss) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(200, 600));
  const page_id_t victim = db->catalog().GetTable("r")->heap->pages().front();
  auto page = db->buffer_pool().FetchPage(victim);
  ASSERT_TRUE(page.ok());
  (*page)->Insert(reinterpret_cast<const uint8_t*>("garbage"), 7);
  db->buffer_pool().UnpinPage(victim, /*dirty=*/true);
  ASSERT_TRUE(db->buffer_pool().FlushPage(victim).ok());
  db->SimulateCrash();

  // A torn page in a committed *base* table cannot be recreated: Reopen
  // surfaces the loss rather than serving corrupt data.
  Status reopened = db->Reopen();
  EXPECT_EQ(reopened.code(), StatusCode::kDataLoss);
}

// ----------------------------------------------------- engine recovery

class EngineCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    db_.reset(testutil::MakeTwoTableDb(400, 1200));
    base_pages_ = db_->disk_manager().live_pages();
  }
  void TearDown() override { FaultInjector::Global().Reset(); }

  QueryGraph SelQuery() {
    QueryGraph q;
    q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{10})));
    return q;
  }

  std::unique_ptr<Database> db_;
  SimServer server_;
  uint64_t base_pages_ = 0;
};

TEST_F(EngineCrashTest, AdoptsRegisteredSurvivorsDropsUnregistered) {
  // Simulate the engine's durable leftovers: one completed + registered
  // speculative view, one built but never registered (the crash hit
  // between materialization commit and simulated completion).
  ASSERT_TRUE(
      db_->Materialize(SelQuery(), "spec_mv_3", /*register_view=*/true)
          .ok());
  QueryGraph unregistered;
  unregistered.AddSelection(
      Sel("s", "s_c", CompareOp::kLt, Value(int64_t{10})));
  ASSERT_TRUE(db_->Materialize(unregistered, "spec_mv_7",
                               /*register_view=*/false)
                  .ok());

  db_->SimulateCrash();
  ASSERT_TRUE(db_->Reopen().ok());
  ASSERT_NE(db_->catalog().GetTable("spec_mv_3"), nullptr);
  ASSERT_NE(db_->catalog().GetTable("spec_mv_7"), nullptr);

  SpeculationEngine engine(db_.get(), &server_, {});
  ASSERT_TRUE(engine.RecoverAfterCrash(5.0).ok());
  EXPECT_EQ(engine.stats().views_recovered, 1u);
  EXPECT_EQ(engine.stats().views_dropped_at_recovery, 1u);
  EXPECT_EQ(engine.live_views(), (std::vector<std::string>{"spec_mv_3"}));
  EXPECT_EQ(db_->catalog().GetTable("spec_mv_7"), nullptr);

  // Shutdown drops the adopted view too: nothing leaks.
  ASSERT_TRUE(engine.Shutdown().ok());
  EXPECT_EQ(db_->views().size(), 0u);
  EXPECT_EQ(db_->catalog().MaterializedTableNames().size(), 0u);
  EXPECT_EQ(db_->disk_manager().live_pages(), base_pages_);
}

TEST_F(EngineCrashTest, RecoveryBumpsNameCounterPastSurvivors) {
  ASSERT_TRUE(
      db_->Materialize(SelQuery(), "spec_mv_9", /*register_view=*/true)
          .ok());
  db_->SimulateCrash();
  ASSERT_TRUE(db_->Reopen().ok());

  SpeculationEngine engine(db_.get(), &server_, {});
  ASSERT_TRUE(engine.RecoverAfterCrash(1.0).ok());
  // New manipulations must not collide with the adopted survivor: run a
  // formulation and check every materialized table name stays unique.
  TraceEvent add;
  add.type = TraceEventType::kAddSelection;
  add.selection = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{3}));
  ASSERT_TRUE(engine.OnUserEvent(add, 2.0).ok());
  server_.AdvanceTo(200.0);
  ASSERT_TRUE(engine.OnQueryResult(200.0).ok());
  auto names = db_->catalog().MaterializedTableNames();
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end());
  ASSERT_TRUE(engine.Shutdown().ok());
  EXPECT_EQ(db_->disk_manager().live_pages(), base_pages_);
}

// ------------------------------------------------ randomized schedules

TraceEvent SelAdd(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kAddSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent SelDel(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kRemoveSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent JoinAdd(JoinPred j) {
  TraceEvent e;
  e.type = TraceEventType::kAddJoin;
  e.join = std::move(j);
  return e;
}

/// Deterministic synthetic session over the r/s schema (a compact
/// version of chaos_test's generator): formulations of 1-3 selections,
/// optional join, churn edits, GOs, inter-query retention.
Trace MakeCrashTrace(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 3);
  Trace trace;
  trace.user_id = seed;
  trace.seed = seed;
  double t = 1.0;
  auto emit = [&](TraceEvent e) {
    t += rng.NextDouble(0.5, 6.0);
    e.timestamp = t;
    trace.events.push_back(std::move(e));
  };

  const bool use_join = rng.NextBool(0.7);
  bool join_present = false;
  std::vector<SelectionPred> present;
  int64_t next_r = 3, next_s = 2;
  auto draw_sel = [&](bool on_s) {
    if (on_s) {
      next_s += 3;
      return Sel("s", "s_c", CompareOp::kLt, Value(next_s));
    }
    next_r += 5;
    return Sel("r", "r_a", CompareOp::kLt, Value(next_r));
  };

  const size_t queries = 4 + rng.NextRange(3);
  for (size_t q = 0; q < queries; q++) {
    if (use_join && !join_present) {
      emit(JoinAdd(RsJoin()));
      join_present = true;
    }
    bool has_r = false;
    for (const auto& s : present) has_r |= s.table == "r";
    size_t adds = (has_r ? 0 : 1) + rng.NextRange(2);
    for (size_t a = 0; a < adds || !has_r; a++) {
      bool on_s = join_present && rng.NextBool(0.4) && has_r;
      SelectionPred sel = draw_sel(on_s);
      present.push_back(sel);
      has_r |= sel.table == "r";
      emit(SelAdd(sel));
    }
    if (rng.NextBool(0.4)) {
      SelectionPred churn = draw_sel(join_present);
      emit(SelAdd(churn));
      emit(SelDel(churn));
    }
    TraceEvent go;
    go.type = TraceEventType::kGo;
    emit(go);
    for (size_t i = present.size(); i-- > 0;) {
      if (rng.NextBool(0.35)) {
        emit(SelDel(present[i]));
        present.erase(present.begin() + i);
      }
    }
  }
  return trace;
}

struct CrashRunResult {
  std::vector<std::vector<std::string>> results;
  size_t crashes = 0;
};

/// Replay one trace with crash recovery: the disk may die at any write
/// or sync (armed "disk.crash" fault), and the session driver may pull
/// the plug at random event boundaries. Every crash is followed by
/// Database::Reopen() + SpeculationEngine::RecoverAfterCrash(), after
/// which the "zero orphan pages" invariant is checked.
Result<CrashRunResult> RunCrashSession(
    Database* db, const Trace& trace,
    const SpeculationEngineOptions& options, uint64_t seed, bool inject,
    MetricsTimeline* timeline = nullptr) {
  SQP_RETURN_IF_ERROR(db->ColdStart());
  SimServer server;
  if (timeline != nullptr) {
    timeline->BeginEpoch("");
    server.set_timeline(timeline);
  }
  SpeculationEngine engine(db, &server, options);
  Rng rng(seed * 0x6a09e667f3bcc909ULL + 5);
  CrashRunResult out;
  double exec_offset = 0;

  auto recover = [&](double sim_time) -> Status {
    out.crashes++;
    SQP_RETURN_IF_ERROR(db->Reopen());
    SQP_RETURN_IF_ERROR(engine.RecoverAfterCrash(sim_time));
    if (db->disk_manager().live_pages() != CatalogPages(*db)) {
      return Status::Internal("orphan pages survived recovery");
    }
    return Status::OK();
  };

  for (const auto& event : trace.events) {
    double sim_time = event.timestamp + exec_offset;
    server.AdvanceTo(sim_time);
    if (inject && rng.NextBool(0.06)) {
      db->SimulateCrash();  // plug pulled between operations
      SQP_RETURN_IF_ERROR(recover(sim_time));
    }
    if (event.type != TraceEventType::kGo) {
      SQP_RETURN_IF_ERROR(engine.OnUserEvent(event, sim_time));
      if (db->disk_manager().has_crashed()) {
        SQP_RETURN_IF_ERROR(recover(sim_time));
      }
      continue;
    }
    QueryGraph final_query = engine.partial();
    auto submit_time = engine.OnGo(sim_time);
    if (!submit_time.ok()) return submit_time.status();
    if (db->disk_manager().has_crashed()) {
      SQP_RETURN_IF_ERROR(recover(sim_time));
    }
    if (*submit_time > sim_time) {
      server.AdvanceTo(*submit_time);
      SQP_RETURN_IF_ERROR(engine.ResolveWait(*submit_time));
    }
    ExecuteOptions exec;
    exec.keep_rows = true;
    exec.view_mode = options.enabled ? engine.final_view_mode()
                                     : ViewMode::kCostBased;
    auto result = db->Execute(final_query, exec);
    if (!result.ok()) {
      // A crash mid-query (eviction write died): recover and re-run.
      if (!db->disk_manager().has_crashed()) return result.status();
      SQP_RETURN_IF_ERROR(recover(sim_time));
      result = db->Execute(final_query, exec);
      if (!result.ok()) return result.status();
    }
    SimServer::JobId job = server.Submit(result->seconds);
    double done = server.RunUntilComplete(job);
    exec_offset += done - sim_time;
    SQP_RETURN_IF_ERROR(engine.OnQueryResult(done));
    if (db->disk_manager().has_crashed()) {
      SQP_RETURN_IF_ERROR(recover(done));
    }
    out.results.push_back(RowSet(*result));
  }
  SQP_RETURN_IF_ERROR(engine.Shutdown());
  if (timeline != nullptr) timeline->Flush(server.now());
  return out;
}

TEST(CrashChaosTest, RandomizedCrashSchedulesRecoverToBaseline) {
  uint64_t base_seed = 1;
  if (const char* env = std::getenv("SQP_CRASH_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  // Two identically-seeded databases: one never crashes (the oracle),
  // one runs every schedule with crashes injected.
  std::unique_ptr<Database> oracle(testutil::MakeTwoTableDb(600, 1800));
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(600, 1800));
  const uint64_t base_pages = db->disk_manager().live_pages();
  FaultInjector::Global().Reset();

  size_t total_crashes = 0;
  for (uint64_t i = 0; i < 10; i++) {
    const uint64_t seed = base_seed * 1000 + i;
    SCOPED_TRACE("crash seed " + std::to_string(seed));
    Trace trace = MakeCrashTrace(seed);

    // Crash-free baseline: speculation off, no faults.
    SpeculationEngineOptions off;
    off.enabled = false;
    auto baseline =
        RunCrashSession(oracle.get(), trace, off, seed, /*inject=*/false);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    ASSERT_EQ(baseline->crashes, 0u);

    // Crash run: speculation on, the disk armed to die at a random
    // write/sync, plus plug-pulls at random event boundaries.
    Rng arm_rng(seed * 7919 + 23);
    FaultInjector& injector = FaultInjector::Global();
    injector.Reset();
    injector.Seed(seed * 31 + 7);
    FaultSpec crash = FaultSpec::Probability(
        arm_rng.NextDouble(0.001, 0.01), StatusCode::kDataLoss);
    crash.only_in_region = false;
    injector.Arm("disk.crash", crash);

    SpeculationEngineOptions on;
    on.enabled = true;
    on.max_retries = 1;
    on.retry_backoff_seconds = 0.25;
    on.circuit_breaker_threshold = 4;
    on.circuit_breaker_cooldown_seconds = 15.0;
    auto crashed =
        RunCrashSession(db.get(), trace, on, seed, /*inject=*/true);
    FaultInjector::Global().Reset();
    ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();
    total_crashes += crashed->crashes;

    // (a) Committed results bit-identical to the crash-free run.
    ASSERT_EQ(crashed->results.size(), baseline->results.size());
    for (size_t q = 0; q < baseline->results.size(); q++) {
      EXPECT_EQ(crashed->results[q], baseline->results[q])
          << "query " << q << " diverged after crash recovery";
    }

    // (b) The session left no residue: every speculative table, view,
    // and page is gone, committed state intact.
    EXPECT_EQ(db->views().size(), 0u);
    EXPECT_EQ(db->catalog().MaterializedTableNames().size(), 0u);
    ASSERT_EQ(db->disk_manager().live_pages(), base_pages);
  }
  // The sweep must actually have crashed somewhere, or it proved
  // nothing.
  EXPECT_GT(total_crashes, 0u);
  // (c) Torn pages were only ever *detected* (kDataLoss), never served:
  // every detection incremented this counter and every served read
  // passed its checksum — divergence would have failed (a) above.
  SUCCEED() << "checksum failures handled: "
            << db->disk_manager().checksum_failures();
}

/// The telemetry dump is part of the determinism contract (DESIGN.md
/// §16): the same crash schedule replayed twice — same trace, same
/// fault seed, fresh identically-seeded database — yields a
/// byte-identical timeline-series dump. Crash/recovery work lands in
/// the sampled series at exactly the same ticks both times.
TEST(CrashChaosTest, TimelineSeriesDeterministicUnderCrashSchedules) {
  uint64_t base_seed = 1;
  if (const char* env = std::getenv("SQP_CRASH_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  const uint64_t seed = base_seed * 1000 + 3;
  Trace trace = MakeCrashTrace(seed);

  SpeculationEngineOptions on;
  on.enabled = true;
  on.max_retries = 1;
  on.retry_backoff_seconds = 0.25;
  on.circuit_breaker_threshold = 4;
  on.circuit_breaker_cooldown_seconds = 15.0;

  std::string base_csv;
  size_t base_crashes = 0;
  // Run 0 is a warm-up: recovery and learner families register lazily
  // on their first use, and a series must exist before a run starts for
  // its ticks to be comparable. Runs 1 and 2 are the differential.
  for (int run = 0; run < 3; run++) {
    SCOPED_TRACE("run " + std::to_string(run));
    // Zero the global registry so cumulative values (not just deltas)
    // start from the same baseline both times.
    MetricsRegistry::Global().ResetAll();
    std::unique_ptr<Database> db(testutil::MakeTwoTableDb(600, 1800));
    FaultInjector& injector = FaultInjector::Global();
    injector.Reset();
    injector.Seed(seed * 31 + 7);
    FaultSpec crash =
        FaultSpec::Probability(0.008, StatusCode::kDataLoss);
    crash.only_in_region = false;
    injector.Arm("disk.crash", crash);

    MetricsTimeline timeline;
    auto out = RunCrashSession(db.get(), trace, on, seed, /*inject=*/true,
                               &timeline);
    FaultInjector::Global().Reset();
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_GT(timeline.tick_count(), 2u);
    if (run == 0) continue;
    if (run == 1) {
      base_csv = timeline.FormatCsv();
      base_crashes = out->crashes;
    } else {
      EXPECT_EQ(out->crashes, base_crashes);
      EXPECT_EQ(timeline.FormatCsv(), base_csv)
          << "timeline series diverged across identical crash replays";
    }
  }
}

}  // namespace
}  // namespace sqp
