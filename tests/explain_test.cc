// EXPLAIN ANALYZE operator profiling (DESIGN.md §11): per-operator
// actuals vs planner estimates, Q-error, deterministic rendering, and
// the guarantee that profiling never perturbs simulated charges.
#include "exec/plan_profile.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/metrics_registry.h"
#include "db/database.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::RsJoin;
using testutil::Sel;

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reset(testutil::MakeTwoTableDb(2000, 6000));
    db_->ColdStart();
  }

  QueryGraph SelQuery() {
    QueryGraph q;
    q.AddSelection(Sel("r", "r_a", CompareOp::kLt, Value(int64_t{40})));
    return q;
  }

  QueryGraph JoinQuery() {
    QueryGraph q = SelQuery();
    q.AddJoin(RsJoin());
    return q;
  }

  static void CheckNode(const OperatorProfile& node) {
    EXPECT_FALSE(node.op.empty());
    EXPECT_GE(node.est_rows, 0) << node.op << " has no estimate";
    EXPECT_GE(node.QError(), 1.0) << node.op;
    for (const auto& child : node.children) CheckNode(*child);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ExplainTest, RootActualsMatchResultRowCount) {
  ExecuteOptions opts;
  opts.explain_analyze = true;
  auto result = db_->Execute(SelQuery(), opts);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->profile, nullptr);
  ASSERT_NE(result->profile->root, nullptr);
  const OperatorProfile& root = *result->profile->root;
  EXPECT_EQ(root.act_rows, result->row_count);
  EXPECT_GT(root.batches, 0u);
  EXPECT_GT(root.sim_seconds, 0.0);
  EXPECT_DOUBLE_EQ(root.est_rows, result->est_rows);
  CheckNode(root);
}

TEST_F(ExplainTest, EveryOperatorCarriesEstimateAndQError) {
  ExecuteOptions opts;
  opts.explain_analyze = true;
  auto result = db_->Execute(JoinQuery(), opts);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->profile, nullptr);
  const OperatorProfile& root = *result->profile->root;
  // SELECT * keeps the join as the root, feeding from two scans.
  EXPECT_EQ(root.op, "HashJoin");
  ASSERT_EQ(root.children.size(), 2u);
  CheckNode(root);
  // Charges are inclusive: the root subtree saw at least what either
  // scan subtree saw.
  for (const auto& scan : root.children) {
    EXPECT_GE(root.tuples_charged, scan->tuples_charged);
    EXPECT_GE(root.sim_seconds, scan->sim_seconds);
  }
  // With projections, a Project node tops the tree and inherits the
  // root cardinality estimate.
  QueryGraph projected = JoinQuery();
  projected.SetProjections({"r_a", "s_c"});
  auto narrow = db_->Execute(projected, opts);
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow->profile->root->op, "Project");
  ASSERT_EQ(narrow->profile->root->children.size(), 1u);
  EXPECT_EQ(narrow->profile->root->children[0]->op, "HashJoin");
  CheckNode(*narrow->profile->root);
}

TEST_F(ExplainTest, SqlDecorationsAreProfiled) {
  ExecuteOptions opts;
  opts.explain_analyze = true;
  auto result = db_->ExecuteSql(
      "SELECT * FROM r WHERE r_a < 40 ORDER BY r_b LIMIT 7", opts);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->profile, nullptr);
  const OperatorProfile& root = *result->profile->root;
  EXPECT_EQ(root.op, "Limit");
  EXPECT_EQ(root.act_rows, result->row_count);
  EXPECT_EQ(root.act_rows, 7u);
  EXPECT_DOUBLE_EQ(root.est_rows, 7.0);
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0]->op, "Sort");
  CheckNode(root);
}

TEST_F(ExplainTest, ProfilingNeverChangesSimulatedCharges) {
  ExecuteOptions plain;
  auto base = db_->Execute(JoinQuery(), plain);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(db_->ColdStart().ok());
  ExecuteOptions profiled;
  profiled.explain_analyze = true;
  auto with = db_->Execute(JoinQuery(), profiled);
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(base->row_count, with->row_count);
  EXPECT_DOUBLE_EQ(base->seconds, with->seconds);
  EXPECT_EQ(base->blocks, with->blocks);
  // Without the flag there is no profile, but est_rows still lands.
  EXPECT_EQ(base->profile, nullptr);
  EXPECT_DOUBLE_EQ(base->est_rows, with->est_rows);
}

TEST_F(ExplainTest, TextRenderingIsByteIdenticalAcrossRuns) {
  ExecuteOptions opts;
  opts.explain_analyze = true;
  auto first = db_->ExecuteSql(
      "SELECT r_s, COUNT(*) FROM r WHERE r_a < 40 GROUP BY r_s", opts);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(db_->ColdStart().ok());
  auto second = db_->ExecuteSql(
      "SELECT r_s, COUNT(*) FROM r WHERE r_a < 40 GROUP BY r_s", opts);
  ASSERT_TRUE(second.ok());
  ASSERT_NE(first->profile, nullptr);
  ASSERT_NE(second->profile, nullptr);
  EXPECT_EQ(first->profile->FormatText(), second->profile->FormatText());
  EXPECT_EQ(first->profile->FormatJson(), second->profile->FormatJson());
  // Text mentions every decoration and the Q-error column.
  std::string text = first->profile->FormatText();
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
  EXPECT_NE(text.find("SeqScan"), std::string::npos);
  EXPECT_NE(text.find(" q="), std::string::npos);
  // Wall time only shows up on request (it is non-deterministic).
  EXPECT_EQ(text.find("wall="), std::string::npos);
  EXPECT_NE(first->profile->FormatText(/*include_wall=*/true).find("wall="),
            std::string::npos);
}

TEST_F(ExplainTest, JsonIsBalancedAndTagged) {
  ExecuteOptions opts;
  opts.explain_analyze = true;
  auto result = db_->Execute(JoinQuery(), opts);
  ASSERT_TRUE(result.ok());
  std::string json = result->profile->FormatJson();
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') depth++;
    if (c == '}' || c == ']') depth--;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"op\":\"HashJoin\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  EXPECT_NE(json.find("\"q_error\":"), std::string::npos);
}

TEST_F(ExplainTest, RootQErrorObservedInRegistry) {
  auto& registry = MetricsRegistry::Global();
  registry.ResetAll();
  ExecuteOptions opts;
  opts.explain_analyze = true;
  ASSERT_TRUE(db_->Execute(SelQuery(), opts).ok());
  ASSERT_TRUE(db_->Execute(JoinQuery(), opts).ok());
  auto snapshot = registry.Snapshot();
  auto it = snapshot.histograms.find("exec.plan.q_error");
  ASSERT_NE(it, snapshot.histograms.end());
  EXPECT_EQ(it->second.count, 2u);
  // Every observation is a q-error, so the mean is >= 1.
  EXPECT_GE(it->second.sum / it->second.count, 1.0);
}

TEST_F(ExplainTest, QuantilesInterpolateWithinBuckets) {
  MetricsSnapshot::HistogramEntry entry;
  entry.bounds = {1.0, 2.0, 4.0};
  entry.counts = {10, 0, 0, 0};
  entry.count = 10;
  // All mass in [0, 1]: the median interpolates to the bucket middle.
  EXPECT_DOUBLE_EQ(entry.Quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(entry.Quantile(1.0), 1.0);
  // Overflow mass pins to the last finite bound.
  entry.counts = {0, 0, 0, 5};
  entry.count = 5;
  EXPECT_DOUBLE_EQ(entry.Quantile(0.99), 4.0);
  // Empty histogram reports 0.
  entry.counts = {0, 0, 0, 0};
  entry.count = 0;
  EXPECT_DOUBLE_EQ(entry.Quantile(0.5), 0.0);
}

}  // namespace
}  // namespace sqp
