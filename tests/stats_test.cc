// Statistics: histograms (accuracy against exact selectivities),
// table stats, and the selectivity estimator's fallbacks.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "stats/histogram.h"
#include "stats/selectivity.h"
#include "stats/table_stats.h"

namespace sqp {
namespace {

double ExactSelectivity(const std::vector<Value>& values, CompareOp op,
                        const Value& c) {
  size_t n = 0;
  for (const auto& v : values) {
    if (EvalCompare(v.Compare(c), op)) n++;
  }
  return static_cast<double>(n) / values.size();
}

TEST(HistogramTest, EmptyColumn) {
  Histogram h = Histogram::Build({});
  EXPECT_EQ(h.row_count(), 0u);
  EXPECT_EQ(h.EstimateSelectivity(CompareOp::kEq, Value(int64_t{1})), 0.0);
}

TEST(HistogramTest, SingleValueColumn) {
  std::vector<Value> values(100, Value(int64_t{7}));
  Histogram h = Histogram::Build(values);
  EXPECT_EQ(h.distinct_count(), 1u);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kEq, Value(int64_t{7})), 1.0,
              1e-9);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kEq, Value(int64_t{8})), 0.0,
              0.02);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kLt, Value(int64_t{7})), 0.0,
              1e-9);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kLe, Value(int64_t{7})), 1.0,
              1e-9);
}

TEST(HistogramTest, McvCapturesHeavyHitters) {
  std::vector<Value> values;
  for (int i = 0; i < 900; i++) values.emplace_back(int64_t{1});
  for (int i = 0; i < 100; i++) values.emplace_back(int64_t{i + 10});
  Histogram h = Histogram::Build(values);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kEq, Value(int64_t{1})), 0.9,
              0.01);
}

TEST(HistogramTest, StringColumnsUseMcvs) {
  std::vector<Value> values;
  for (int i = 0; i < 700; i++) values.emplace_back("A");
  for (int i = 0; i < 300; i++) values.emplace_back("B");
  Histogram h = Histogram::Build(values);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kEq, Value("A")), 0.7, 0.01);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kEq, Value("B")), 0.3, 0.01);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kNe, Value("A")), 0.3, 0.01);
}

struct HistAccuracyParam {
  uint64_t seed;
  double theta;  // 0 = uniform
  size_t n;
};

class HistogramAccuracy
    : public ::testing::TestWithParam<HistAccuracyParam> {};

TEST_P(HistogramAccuracy, RangeAndEqualityWithinTolerance) {
  const auto p = GetParam();
  Rng rng(p.seed);
  std::vector<Value> values;
  if (p.theta > 0) {
    ZipfGenerator zipf(100, p.theta);
    for (size_t i = 0; i < p.n; i++) {
      values.emplace_back(static_cast<int64_t>(zipf.Next(rng)));
    }
  } else {
    for (size_t i = 0; i < p.n; i++) {
      values.emplace_back(rng.NextInt(0, 99));
    }
  }
  Histogram h = Histogram::Build(values);

  for (int trial = 0; trial < 30; trial++) {
    int64_t c = rng.NextInt(0, 99);
    for (CompareOp op : {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                         CompareOp::kGe, CompareOp::kEq}) {
      double est = h.EstimateSelectivity(op, Value(c));
      double exact = ExactSelectivity(values, op, Value(c));
      double tolerance = op == CompareOp::kEq ? 0.05 : 0.08;
      ASSERT_NEAR(est, exact, tolerance)
          << CompareOpName(op) << " " << c << " theta=" << p.theta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, HistogramAccuracy,
    ::testing::Values(HistAccuracyParam{1, 0.0, 20000},
                      HistAccuracyParam{2, 0.85, 20000},
                      HistAccuracyParam{3, 1.2, 20000},
                      HistAccuracyParam{4, 0.85, 500}));

TEST(HistogramTest, DoublesSupported) {
  Rng rng(5);
  std::vector<Value> values;
  for (int i = 0; i < 5000; i++) values.emplace_back(rng.NextDouble(0, 10));
  Histogram h = Histogram::Build(values);
  double est = h.EstimateSelectivity(CompareOp::kLt, Value(2.5));
  EXPECT_NEAR(est, 0.25, 0.05);
}

TEST(HistogramTest, OutOfDomainConstants) {
  std::vector<Value> values;
  for (int i = 0; i < 100; i++) values.emplace_back(int64_t{i});
  Histogram h = Histogram::Build(values);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kLt, Value(int64_t{-5})), 0.0,
              0.01);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kGt, Value(int64_t{500})), 0.0,
              0.01);
  EXPECT_NEAR(h.EstimateSelectivity(CompareOp::kLe, Value(int64_t{500})), 1.0,
              0.01);
}

// ------------------------------------------------------------ TableStats

TEST(TableStatsTest, MinMaxDistinct) {
  Schema schema({{"a", TypeId::kInt64}, {"s", TypeId::kString}});
  std::vector<Tuple> rows;
  for (int i = 0; i < 100; i++) {
    rows.push_back(Tuple{Value(int64_t{i % 10}), Value(i % 2 ? "x" : "y")});
  }
  TableStats stats = TableStats::Compute(schema, rows, 3);
  EXPECT_EQ(stats.row_count(), 100u);
  EXPECT_EQ(stats.page_count(), 3u);
  EXPECT_EQ(stats.column(0).min->AsInt64(), 0);
  EXPECT_EQ(stats.column(0).max->AsInt64(), 9);
  EXPECT_EQ(stats.column(0).distinct_count, 10u);
  EXPECT_EQ(stats.column(1).distinct_count, 2u);
}

TEST(TableStatsTest, EmptyTable) {
  Schema schema({{"a", TypeId::kInt64}});
  TableStats stats = TableStats::Compute(schema, {}, 0);
  EXPECT_EQ(stats.row_count(), 0u);
  EXPECT_FALSE(stats.column(0).min.has_value());
}

// ----------------------------------------------------------- Selectivity

TEST(SelectivityTest, UniformFallbackRange) {
  ColumnStats stats;
  stats.min = Value(int64_t{0});
  stats.max = Value(int64_t{100});
  stats.distinct_count = 101;
  double est = EstimateSelectionSelectivity(stats, nullptr, CompareOp::kLt,
                                            Value(int64_t{25}));
  EXPECT_NEAR(est, 0.25, 0.01);
  est = EstimateSelectionSelectivity(stats, nullptr, CompareOp::kGe,
                                     Value(int64_t{75}));
  EXPECT_NEAR(est, 0.25, 0.01);
}

TEST(SelectivityTest, UniformFallbackEquality) {
  ColumnStats stats;
  stats.min = Value(int64_t{0});
  stats.max = Value(int64_t{9});
  stats.distinct_count = 10;
  EXPECT_NEAR(EstimateSelectionSelectivity(stats, nullptr, CompareOp::kEq,
                                           Value(int64_t{3})),
              0.1, 1e-9);
  // Out of [min, max]: zero.
  EXPECT_EQ(EstimateSelectionSelectivity(stats, nullptr, CompareOp::kEq,
                                         Value(int64_t{42})),
            0.0);
}

TEST(SelectivityTest, HistogramOverridesUniform) {
  // Skewed data: uniform assumption is badly wrong; histogram fixes it.
  Rng rng(6);
  ZipfGenerator zipf(100, 1.0);
  std::vector<Value> values;
  for (int i = 0; i < 20000; i++) {
    values.emplace_back(static_cast<int64_t>(zipf.Next(rng)));
  }
  Histogram hist = Histogram::Build(values);
  ColumnStats stats;
  stats.min = Value(int64_t{0});
  stats.max = Value(int64_t{99});
  stats.distinct_count = 100;

  double exact = ExactSelectivity(values, CompareOp::kLt, Value(int64_t{5}));
  double uniform = EstimateSelectionSelectivity(stats, nullptr,
                                                CompareOp::kLt,
                                                Value(int64_t{5}));
  double with_hist = EstimateSelectionSelectivity(stats, &hist,
                                                  CompareOp::kLt,
                                                  Value(int64_t{5}));
  EXPECT_GT(std::abs(uniform - exact), 0.15);  // uniform badly wrong
  EXPECT_LT(std::abs(with_hist - exact), 0.1);  // histogram close
}

TEST(SelectivityTest, JoinSelectivityUsesLargerDistinct) {
  EXPECT_DOUBLE_EQ(EstimateJoinSelectivity(100, 1000), 1.0 / 1000);
  EXPECT_DOUBLE_EQ(EstimateJoinSelectivity(0, 0), 1.0);
}

}  // namespace
}  // namespace sqp
