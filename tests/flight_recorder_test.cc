// Speculation flight recorder (DESIGN.md §11): deterministic decision
// logs, Cost⊆ decompositions on every recorded round, terminal outcome
// classification across the full manipulation lifecycle (including
// injected faults and crash-restart), and learner calibration.
#include "speculation/flight_recorder.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/fault_injector.h"
#include "common/metrics_registry.h"
#include "speculation/engine.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::Sel;

TraceEvent SelAdd(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kAddSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent SelDel(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kRemoveSelection;
  e.selection = std::move(s);
  return e;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    MetricsRegistry::Global().ResetAll();
    Reset();
  }
  void TearDown() override { FaultInjector::Global().Reset(); }

  void Reset(SpeculationEngineOptions options = {}) {
    engine_.reset();
    db_.reset(testutil::MakeTwoTableDb(2000, 6000));
    db_->ColdStart();
    server_ = std::make_unique<SimServer>();
    engine_ = std::make_unique<SpeculationEngine>(db_.get(), server_.get(),
                                                  std::move(options));
  }

  SelectionPred SelectiveSel() {
    return Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  }

  /// Drive one complete formulation: edit at t=0, completion by t=50,
  /// GO at t=50, then shutdown. Returns the recorder's full log.
  std::string RunScriptedSession() {
    EXPECT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
    server_->AdvanceTo(50.0);
    EXPECT_TRUE(engine_->OnGo(50.0).ok());
    EXPECT_TRUE(engine_->OnQueryResult(51.0).ok());
    EXPECT_TRUE(engine_->Shutdown().ok());
    return engine_->flight_recorder().FormatLog();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<SimServer> server_;
  std::unique_ptr<SpeculationEngine> engine_;
};

TEST_F(FlightRecorderTest, RecordsRoundWithCostDecomposition) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  const FlightRecorder& recorder = engine_->flight_recorder();
  ASSERT_GE(recorder.records().size(), 1u);
  const DecisionRecord& record = recorder.records().front();
  EXPECT_EQ(record.round, 1u);
  EXPECT_NE(record.partial_sql.find("FROM r"), std::string::npos);
  EXPECT_NE(record.partial_sql.find("r_a"), std::string::npos);
  ASSERT_FALSE(record.candidates.empty());
  ASSERT_GE(record.chosen_index, 0);
  EXPECT_EQ(record.outcome, DecisionOutcome::kPending);
  const CandidateLog& chosen =
      record.candidates[static_cast<size_t>(record.chosen_index)];
  EXPECT_TRUE(chosen.chosen);
  // The Cost⊆ decomposition (Theorem 3.1 terms) is present and sane.
  EXPECT_GT(chosen.eval.cost_without, 0.0);
  EXPECT_GT(chosen.eval.cost_with, 0.0);
  EXPECT_GE(chosen.eval.containment_probability, 0.0);
  EXPECT_LE(chosen.eval.containment_probability, 1.0);
  EXPECT_GT(chosen.eval.estimated_duration, 0.0);
}

TEST_F(FlightRecorderTest, LifecycleOutcomesAreStamped) {
  // Cancel-on-edit.
  SelectionPred sel = SelectiveSel();
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(sel), 0.0).ok());
  ASSERT_TRUE(engine_->OnUserEvent(SelDel(sel), 0.1).ok());
  const auto& records = engine_->flight_recorder().records();
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records.front().outcome, DecisionOutcome::kCancelledOnEdit);

  // Cancel-at-GO: re-add and GO before the simulated completion.
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(sel), 0.2).ok());
  ASSERT_TRUE(engine_->OnGo(0.3).ok());
  bool saw_cancelled_at_go = false;
  for (const auto& record : engine_->flight_recorder().records()) {
    saw_cancelled_at_go |=
        record.outcome == DecisionOutcome::kCancelledAtGo;
  }
  EXPECT_TRUE(saw_cancelled_at_go);
}

TEST_F(FlightRecorderTest, UsedAtGoIsStickyThroughShutdown) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  server_->AdvanceTo(50.0);
  ASSERT_TRUE(engine_->OnGo(50.0).ok());
  const auto& records = engine_->flight_recorder().records();
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records.front().outcome, DecisionOutcome::kUsedAtGo);
  // Shutdown drops the view, but the "win" classification survives.
  ASSERT_TRUE(engine_->Shutdown().ok());
  EXPECT_EQ(records.front().outcome, DecisionOutcome::kUsedAtGo);
}

TEST_F(FlightRecorderTest, EveryRecordTerminalAfterShutdown) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  ASSERT_TRUE(
      engine_->OnUserEvent(
                  SelAdd(Sel("s", "s_c", CompareOp::kLt, Value(int64_t{3}))),
                  5.0)
          .ok());
  server_->AdvanceTo(60.0);
  ASSERT_TRUE(engine_->OnGo(60.0).ok());
  ASSERT_TRUE(engine_->OnQueryResult(61.0).ok());
  ASSERT_TRUE(engine_->Shutdown().ok());
  const auto& records = engine_->flight_recorder().records();
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    EXPECT_TRUE(IsTerminalOutcome(record.outcome))
        << "round " << record.round << " left as "
        << DecisionOutcomeName(record.outcome);
    // Any round that issued something has its decomposition on file.
    if (record.chosen_index >= 0) {
      const auto& chosen =
          record.candidates[static_cast<size_t>(record.chosen_index)];
      EXPECT_GT(chosen.eval.cost_without, 0.0);
      EXPECT_GT(chosen.eval.cost_with, 0.0);
    }
  }
}

TEST_F(FlightRecorderTest, InjectedFaultYieldsFailedOutcome) {
  FaultSpec spec = FaultSpec::OneShot(1, StatusCode::kInternal);
  FaultInjector::Global().Arm("engine.manipulation", spec);
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  EXPECT_EQ(engine_->stats().manipulations_failed, 1u);
  const auto& records = engine_->flight_recorder().records();
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records.front().outcome, DecisionOutcome::kFailed);
  EXPECT_TRUE(IsTerminalOutcome(records.front().outcome));
}

TEST_F(FlightRecorderTest, CrashStampsLostAndRecorderSurvivesRestart) {
  // First manipulation completes and registers its view.
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  server_->AdvanceTo(50.0);
  ASSERT_TRUE(engine_->OnQueryResult(50.0).ok());
  ASSERT_EQ(engine_->stats().manipulations_completed, 1u);
  // Second one is still in flight when the machine dies.
  ASSERT_TRUE(
      engine_->OnUserEvent(
                  SelAdd(Sel("s", "s_c", CompareOp::kLt, Value(int64_t{3}))),
                  50.5)
          .ok());
  ASSERT_EQ(engine_->stats().manipulations_issued, 2u);

  db_->SimulateCrash();
  ASSERT_TRUE(db_->Reopen().ok());
  ASSERT_TRUE(engine_->RecoverAfterCrash(51.0).ok());

  const auto& records = engine_->flight_recorder().records();
  ASSERT_GE(records.size(), 2u);
  // The recorder itself is session state: it survives the restart with
  // its history intact, and the in-flight round is stamped lost.
  bool saw_lost = false;
  for (const auto& record : records) {
    saw_lost |= record.outcome == DecisionOutcome::kLostAtCrash;
  }
  EXPECT_TRUE(saw_lost);
  // The adopted survivor keeps its round: using it at GO still lands on
  // the original record.
  ASSERT_EQ(engine_->stats().views_recovered, 1u);
  server_->AdvanceTo(52.0);
  ASSERT_TRUE(engine_->OnGo(52.0).ok());
  EXPECT_EQ(records.front().outcome, DecisionOutcome::kUsedAtGo);
  ASSERT_TRUE(engine_->Shutdown().ok());
  for (const auto& record : records) {
    EXPECT_TRUE(IsTerminalOutcome(record.outcome));
  }
}

TEST_F(FlightRecorderTest, IdenticalSessionsProduceIdenticalLogs) {
  std::string first = RunScriptedSession();
  MetricsRegistry::Global().ResetAll();
  Reset();
  std::string second = RunScriptedSession();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The log carries the decomposition and the calibration trailer.
  EXPECT_NE(first.find("cost_sub="), std::string::npos);
  EXPECT_NE(first.find("f_sub="), std::string::npos);
  EXPECT_NE(first.find("calibration: scored="), std::string::npos);
}

TEST_F(FlightRecorderTest, CalibrationIsConsistent) {
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(SelectiveSel()), 0.0).ok());
  server_->AdvanceTo(50.0);
  ASSERT_TRUE(engine_->OnGo(50.0).ok());
  const CalibrationReport& report =
      engine_->flight_recorder().calibration();
  ASSERT_GT(report.scored, 0u);
  EXPECT_GE(report.brier(), 0.0);
  EXPECT_LE(report.brier(), 1.0);
  uint64_t total = 0, survived = 0;
  for (size_t i = 0; i < report.bucket_counts.size(); i++) {
    EXPECT_LE(report.bucket_survived[i], report.bucket_counts[i]);
    total += report.bucket_counts[i];
    survived += report.bucket_survived[i];
  }
  EXPECT_EQ(total, report.scored);
  EXPECT_LE(survived, total);
  // Engine stats mirror the recorder's tallies.
  EXPECT_EQ(engine_->stats().predictions_scored, report.scored);
  EXPECT_DOUBLE_EQ(engine_->stats().brier_sum, report.brier_sum);
  // And the registry sees them (spec.learner.brier ∈ [0,1]).
  auto snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("spec.recorder.scored"), report.scored);
  auto brier = snapshot.gauges.find("spec.learner.brier");
  ASSERT_NE(brier, snapshot.gauges.end());
  EXPECT_GE(brier->second, 0.0);
  EXPECT_LE(brier->second, 1.0);
  auto hist = snapshot.histograms.find("spec.learner.calibration");
  ASSERT_NE(hist, snapshot.histograms.end());
  EXPECT_EQ(hist->second.count, report.scored);
}

TEST_F(FlightRecorderTest, RingBufferEvictsOldestRounds) {
  SpeculationEngineOptions options;
  options.flight_recorder_capacity = 2;
  Reset(std::move(options));
  SelectionPred sel = SelectiveSel();
  // Each add/remove pair runs at least one Speculator round.
  for (int i = 0; i < 4; i++) {
    double t = i * 1.0;
    ASSERT_TRUE(engine_->OnUserEvent(SelAdd(sel), t).ok());
    ASSERT_TRUE(engine_->OnUserEvent(SelDel(sel), t + 0.5).ok());
  }
  const FlightRecorder& recorder = engine_->flight_recorder();
  EXPECT_LE(recorder.records().size(), 2u);
  EXPECT_GT(recorder.rounds_recorded(), 2u);
  // Outcome updates for evicted rounds are dropped, not crashes.
  ASSERT_TRUE(engine_->Shutdown().ok());
}

}  // namespace
}  // namespace sqp
