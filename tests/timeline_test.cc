// Time-series telemetry and per-session attribution (DESIGN.md §16):
// the MetricsTimeline sampler (tick phase, epochs, deltas, the
// deterministic-series filter, ring buffer, counter tracks), the
// Attribution exclusive-accounting invariant, the cached
// HistogramEntry::Percentile, and the OpenMetrics exporter.
#include "common/metrics_timeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/attribution.h"
#include "common/cost_meter.h"
#include "common/metrics_registry.h"
#include "common/openmetrics.h"
#include "common/tracing.h"

namespace sqp {
namespace {

TEST(MetricsTimelineTest, TicksFireAtIntervalMultiples) {
  MetricsRegistry registry;
  MetricsTimelineOptions options;
  options.interval = 2.0;
  MetricsTimeline timeline(options, &registry);

  timeline.AdvanceTo(5.0);
  ASSERT_EQ(timeline.ticks().size(), 3u);  // t = 0, 2, 4
  EXPECT_EQ(timeline.ticks()[0].t, 0.0);
  EXPECT_EQ(timeline.ticks()[1].t, 2.0);
  EXPECT_EQ(timeline.ticks()[2].t, 4.0);

  // Flush lands a final tick at the exact end time; a second Flush at
  // the same time is a no-op.
  timeline.Flush(5.0);
  ASSERT_EQ(timeline.ticks().size(), 4u);
  EXPECT_EQ(timeline.ticks()[3].t, 5.0);
  timeline.Flush(5.0);
  EXPECT_EQ(timeline.ticks().size(), 4u);

  // The tick counter is part of the sampled registry.
  EXPECT_EQ(registry.Snapshot().counter("telemetry.ticks"), 4u);
}

TEST(MetricsTimelineTest, EpochsResetThePhaseAndLabelTicks) {
  MetricsRegistry registry;
  MetricsTimeline timeline({}, &registry);

  timeline.BeginEpoch("u0/spec");
  timeline.AdvanceTo(2.0);
  timeline.BeginEpoch("u1/spec");
  timeline.AdvanceTo(1.0);

  ASSERT_EQ(timeline.ticks().size(), 5u);  // 0,1,2 then 0,1
  EXPECT_EQ(timeline.ticks()[2].epoch, "u0/spec");
  EXPECT_EQ(timeline.ticks()[2].t, 2.0);
  EXPECT_EQ(timeline.ticks()[3].epoch, "u1/spec");
  EXPECT_EQ(timeline.ticks()[3].t, 0.0);  // fresh epoch-local clock
  // Global tick index keeps counting across epochs.
  EXPECT_EQ(timeline.ticks()[3].index, 3u);
}

TEST(MetricsTimelineTest, DeltasStayValidAcrossEpochs) {
  MetricsRegistry registry;
  Counter* reads = registry.GetCounter("storage.disk.reads");
  MetricsTimeline timeline({}, &registry);

  timeline.BeginEpoch("a");
  reads->Increment(10);
  timeline.AdvanceTo(0.0);
  timeline.BeginEpoch("b");
  reads->Increment(7);
  timeline.AdvanceTo(0.0);

  auto find = [](const TimelineTick& tick, const std::string& series) {
    for (const auto& p : tick.points) {
      if (p.series == series) return p;
    }
    return TimelineTick::Point{};
  };
  // First epoch's baseline sees the full cumulative value as delta;
  // the next epoch's first tick sees only the increment since.
  EXPECT_EQ(find(timeline.ticks()[0], "storage.disk.reads").delta, 10.0);
  EXPECT_EQ(find(timeline.ticks()[1], "storage.disk.reads").value, 17.0);
  EXPECT_EQ(find(timeline.ticks()[1], "storage.disk.reads").delta, 7.0);
}

TEST(MetricsTimelineTest, DeterministicFilterExcludesWallClockFamilies) {
  EXPECT_TRUE(MetricsTimeline::IsDeterministicSeries("storage.disk.reads"));
  EXPECT_TRUE(MetricsTimeline::IsDeterministicSeries("telemetry.ticks"));
  EXPECT_FALSE(MetricsTimeline::IsDeterministicSeries("scheduler.tasks"));
  EXPECT_FALSE(
      MetricsTimeline::IsDeterministicSeries("exec.parallel.morsels"));
  EXPECT_FALSE(
      MetricsTimeline::IsDeterministicSeries("spec.parallel.fallbacks"));
  // Batch boundaries follow the execution shape (fused parallel probe)
  // and the series gauge counts thread-dependent families: excluded.
  EXPECT_FALSE(MetricsTimeline::IsDeterministicSeries("exec.batch.rows"));
  EXPECT_FALSE(MetricsTimeline::IsDeterministicSeries("telemetry.series"));

  MetricsRegistry registry;
  registry.GetCounter("scheduler.tasks")->Increment(3);
  registry.GetCounter("bufferpool.hits")->Increment(5);
  MetricsTimeline timeline({}, &registry);
  timeline.AdvanceTo(0.0);

  std::string csv = timeline.FormatCsv();
  EXPECT_NE(csv.find("bufferpool.hits"), std::string::npos);
  EXPECT_EQ(csv.find("scheduler.tasks"), std::string::npos);
  std::string all = timeline.FormatCsv(/*include_nondeterministic=*/true);
  EXPECT_NE(all.find("scheduler.tasks"), std::string::npos);

  std::string json = timeline.FormatJson();
  EXPECT_NE(json.find("\"bufferpool.hits\""), std::string::npos);
  EXPECT_EQ(json.find("\"scheduler.tasks\""), std::string::npos);
}

TEST(MetricsTimelineTest, RingBufferDropsOldestTicks) {
  MetricsRegistry registry;
  MetricsTimelineOptions options;
  options.capacity = 2;
  MetricsTimeline timeline(options, &registry);

  timeline.AdvanceTo(3.0);  // 4 ticks into a 2-slot ring
  ASSERT_EQ(timeline.ticks().size(), 2u);
  EXPECT_EQ(timeline.dropped_ticks(), 2u);
  EXPECT_EQ(timeline.tick_count(), 4u);
  EXPECT_EQ(timeline.ticks()[0].t, 2.0);  // oldest retained
  EXPECT_EQ(registry.Snapshot().counter("telemetry.ticks_dropped"), 2u);
}

TEST(MetricsTimelineTest, CounterTracksCarryTheEpochPrefix) {
  MetricsRegistry registry;
  registry.GetCounter("bufferpool.hits")->Increment(9);
  registry.GetCounter("bufferpool.misses")->Increment(1);
  registry.GetGauge("spec.cache.pages")->Set(12);
  registry.GetGauge("sim.active_jobs")->Set(2);
  Tracer tracer;
  MetricsTimeline timeline({}, &registry);
  timeline.set_tracer(&tracer);

  timeline.BeginEpoch("u3/spec");
  timeline.AdvanceTo(0.0);

  ASSERT_FALSE(tracer.counter_samples().empty());
  bool hit_rate = false, cache = false, jobs = false;
  for (const auto& sample : tracer.counter_samples()) {
    if (sample.track == "u3/spec/bufferpool.hit_rate") {
      hit_rate = true;
      ASSERT_EQ(sample.values.size(), 1u);
      EXPECT_DOUBLE_EQ(sample.values[0].second, 0.9);
    }
    if (sample.track == "u3/spec/spec.cache.pages") cache = true;
    if (sample.track == "u3/spec/sim.jobs") jobs = true;
  }
  EXPECT_TRUE(hit_rate);
  EXPECT_TRUE(cache);
  EXPECT_TRUE(jobs);
}

TEST(AttributionTest, ExclusiveAccountingNeverDoubleCounts) {
  CostMeter meter;
  MetricsRegistry registry;
  Attribution attribution(&meter, &registry);

  attribution.SetSession("u0");
  AttributionScope query(&attribution, Attribution::Kind::kQuery);
  meter.ChargeBlockRead(10);
  meter.ChargeTuples(100);
  {
    AttributionScope manip(&attribution, Attribution::Kind::kManipulation);
    meter.ChargeBlockWrite(4);
    meter.ChargeTuples(40);
    manip.Close();
    EXPECT_EQ(manip.inclusive().blocks, 4u);
    EXPECT_EQ(manip.exclusive().blocks, 4u);
  }
  meter.ChargeBlockRead(1);
  query.Close();

  // Inclusive spans the whole interval; exclusive subtracts the child.
  EXPECT_EQ(query.inclusive().blocks, 15u);
  EXPECT_EQ(query.inclusive().tuples, 140u);
  EXPECT_EQ(query.exclusive().blocks, 11u);
  EXPECT_EQ(query.exclusive().tuples, 100u);

  const auto& row = attribution.sessions().at("u0");
  EXPECT_EQ(row.query.blocks, 11u);
  EXPECT_EQ(row.manipulation.blocks, 4u);

  // The invariant: attributed + unattributed == meter totals, exactly.
  meter.ChargeTuples(5);  // no scope open: unattributed
  Attribution::Totals attributed = attribution.attributed();
  Attribution::Totals rest = attribution.unattributed();
  EXPECT_EQ(attributed.blocks + rest.blocks,
            meter.blocks_read() + meter.blocks_written());
  EXPECT_EQ(attributed.tuples + rest.tuples, meter.tuples_processed());
  EXPECT_EQ(rest.tuples, 5u);

  // Static aggregate metrics: histogram observed inclusive, counters
  // accumulated exclusive.
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("attr.query.blocks"), 11u);
  EXPECT_EQ(snapshot.counter("attr.manipulation.blocks"), 4u);
  EXPECT_EQ(snapshot.histograms.at("attr.query.seconds").count, 1u);
}

TEST(AttributionTest, SessionsInterleaveAsAmbientState) {
  CostMeter meter;
  MetricsRegistry registry;
  Attribution attribution(&meter, &registry);

  attribution.SetSession("alice");
  {
    AttributionScope scope(&attribution, Attribution::Kind::kQuery);
    meter.ChargeTuples(10);
  }
  attribution.SetSession("bob");
  {
    AttributionScope scope(&attribution, Attribution::Kind::kMaintenance);
    meter.ChargeBlockRead(3);
  }
  attribution.SetSession("");

  EXPECT_EQ(attribution.sessions().at("alice").query.tuples, 10u);
  EXPECT_EQ(attribution.sessions().at("bob").maintenance.blocks, 3u);

  std::string table = attribution.FormatTable();
  EXPECT_NE(table.find("alice"), std::string::npos);
  EXPECT_NE(table.find("bob"), std::string::npos);
  EXPECT_NE(table.find("(unattributed)"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(AttributionTest, NullAttributionScopeIsANoOp) {
  AttributionScope scope(nullptr, Attribution::Kind::kQuery);
  EXPECT_TRUE(scope.closed());
  scope.Close();  // idempotent, no crash
  EXPECT_EQ(scope.inclusive().blocks, 0u);
}

TEST(HistogramPercentileTest, PercentileMatchesQuantile) {
  MetricsRegistry registry;
  HistogramMetric* h =
      registry.GetHistogram("t.latency", {1.0, 2.0, 4.0, 8.0});
  for (double v : {0.5, 0.7, 1.5, 1.6, 3.0, 3.5, 5.0, 6.0, 7.0, 20.0}) {
    h->Observe(v);
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  const auto& entry = snapshot.histograms.at("t.latency");
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(entry.Percentile(q), entry.Quantile(q)) << "q=" << q;
  }
  // Overflow observations pin to the last finite bound.
  EXPECT_DOUBLE_EQ(entry.Percentile(1.0), 8.0);

  MetricsSnapshot::HistogramEntry empty;
  EXPECT_EQ(empty.Percentile(0.5), 0.0);
}

TEST(OpenMetricsTest, ExportsCountersGaugesAndHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("storage.disk.reads")->Increment(42);
  registry.GetGauge("spec.learner.brier")->Set(0.125);
  HistogramMetric* h = registry.GetHistogram("attr.query.seconds", {1, 10});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(100.0);

  std::string text = FormatOpenMetrics(registry.Snapshot());
  EXPECT_NE(text.find("storage_disk_reads_total 42"), std::string::npos);
  EXPECT_NE(text.find("spec_learner_brier 0.125"), std::string::npos);
  EXPECT_NE(text.find("attr_query_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("attr_query_seconds_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("attr_query_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("attr_query_seconds_count 3"), std::string::npos);
  // OpenMetrics requires the terminator.
  EXPECT_NE(text.find("# EOF"), std::string::npos);
}

}  // namespace
}  // namespace sqp
