// Longer speculation-engine scenarios: multi-query sessions exercising
// reuse, re-issue after completion, GC timing, and learner adaptation —
// the interactions single-step tests cannot reach.
#include <gtest/gtest.h>

#include <memory>

#include "speculation/engine.h"
#include "test_util.h"

namespace sqp {
namespace {

using testutil::Join;
using testutil::RsJoin;
using testutil::Sel;

TraceEvent SelAdd(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kAddSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent SelDel(SelectionPred s) {
  TraceEvent e;
  e.type = TraceEventType::kRemoveSelection;
  e.selection = std::move(s);
  return e;
}

TraceEvent JoinAdd(JoinPred j) {
  TraceEvent e;
  e.type = TraceEventType::kAddJoin;
  e.join = std::move(j);
  return e;
}

class EngineScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.reset(testutil::MakeTwoTableDb(2000, 6000));
    db_->ColdStart();
    engine_ = std::make_unique<SpeculationEngine>(db_.get(), &server_);
  }

  void Advance(double t) { server_.AdvanceTo(t); }

  std::unique_ptr<Database> db_;
  SimServer server_;
  std::unique_ptr<SpeculationEngine> engine_;
};

TEST_F(EngineScenarioTest, ViewReusedAcrossConsecutiveQueries) {
  SelectionPred sel = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  // Query 1: formulate with plenty of think time.
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(sel), 0.0).ok());
  Advance(30.0);
  ASSERT_TRUE(engine_->OnGo(30.0).ok());
  ASSERT_EQ(engine_->live_views().size(), 1u);

  ExecuteOptions opts;
  opts.view_mode = engine_->final_view_mode();
  auto q1 = db_->Execute(engine_->partial(), opts);
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(q1->views_used.empty());

  // Query 2 retains the predicate and adds the join, with *no* think
  // time (any freshly issued manipulation is cancelled at GO): the only
  // completed speculative result is query 1's selection view, which
  // survives GC and keeps rewriting.
  ASSERT_TRUE(engine_->OnUserEvent(JoinAdd(RsJoin()), 40.0).ok());
  ASSERT_TRUE(engine_->OnGo(40.001).ok());
  auto q2 = db_->Execute(engine_->partial(), opts);
  ASSERT_TRUE(q2.ok());
  bool reused = false;
  for (const auto& v : q2->views_used) {
    if (v == q1->views_used[0]) reused = true;
  }
  EXPECT_TRUE(reused) << "selection view should amortize across queries";
}

TEST_F(EngineScenarioTest, SecondManipulationIssuedAfterFirstCompletes) {
  SelectionPred s_r = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  SelectionPred s_s = Sel("s", "s_c", CompareOp::kLt, Value(int64_t{5}));
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(s_r), 0.0).ok());
  ASSERT_EQ(engine_->stats().manipulations_issued, 1u);
  // Wait for completion, then another edit opens the next slot.
  Advance(20.0);
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(s_s), 20.0).ok());
  EXPECT_EQ(engine_->stats().manipulations_completed, 1u);
  EXPECT_EQ(engine_->stats().manipulations_issued, 2u);
}

TEST_F(EngineScenarioTest, ExactDuplicateManipulationNotReissued) {
  SelectionPred sel = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(sel), 0.0).ok());
  Advance(20.0);
  ASSERT_TRUE(engine_->OnGo(20.0).ok());
  ASSERT_EQ(engine_->live_views().size(), 1u);
  size_t issued = engine_->stats().manipulations_issued;
  // Next formulation keeps the same predicate: its view already exists,
  // so the enumeration may issue *other* manipulations but never the
  // same materialization again.
  ASSERT_TRUE(engine_->OnUserEvent(JoinAdd(RsJoin()), 30.0).ok());
  if (engine_->stats().manipulations_issued > issued) {
    // Whatever was issued covers a different sub-query.
    EXPECT_EQ(engine_->live_views().size(), 1u);
  }
  SUCCEED();
}

TEST_F(EngineScenarioTest, GcSparesViewsStillImplied) {
  SelectionPred keep = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{5}));
  SelectionPred drop = Sel("s", "s_c", CompareOp::kLt, Value(int64_t{5}));
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(keep), 0.0).ok());
  Advance(20.0);
  ASSERT_TRUE(engine_->OnUserEvent(SelAdd(drop), 20.0).ok());
  Advance(40.0);
  ASSERT_TRUE(engine_->OnGo(40.0).ok());
  size_t views_after_go = engine_->live_views().size();
  ASSERT_GE(views_after_go, 1u);

  // Dropping only `drop` must not GC the view on `keep`.
  ASSERT_TRUE(engine_->OnUserEvent(SelDel(drop), 50.0).ok());
  bool keep_view_alive = false;
  for (const auto& name : engine_->live_views()) {
    const TableInfo* info = db_->catalog().GetTable(name);
    ASSERT_NE(info, nullptr);
    if (info->schema.HasColumn("r_a") && !info->schema.HasColumn("s_c")) {
      keep_view_alive = true;
    }
  }
  EXPECT_TRUE(keep_view_alive);
}

TEST_F(EngineScenarioTest, LearnerAdaptsToChurnyColumn) {
  // A user who habitually retracts predicates on s.s_c: the learner's
  // survival estimate for that column must fall, and with it the
  // engine's eagerness to materialize it.
  SelectionPred churn = Sel("s", "s_c", CompareOp::kLt, Value(int64_t{5}));
  double t = 0;
  for (int i = 0; i < 25; i++) {
    SelectionPred variant = churn;
    variant.constant = Value(static_cast<int64_t>(5 + i));
    ASSERT_TRUE(engine_->OnUserEvent(SelAdd(variant), t).ok());
    ASSERT_TRUE(engine_->OnUserEvent(SelDel(variant), t + 1).ok());
    SelectionPred kept =
        Sel("r", "r_a", CompareOp::kLt, Value(static_cast<int64_t>(3 + i)));
    ASSERT_TRUE(engine_->OnUserEvent(SelAdd(kept), t + 2).ok());
    Advance(t + 10);
    ASSERT_TRUE(engine_->OnGo(t + 10).ok());
    t += 20;
    Advance(t);
  }
  ObservedPart churn_part;
  churn_part.is_join = false;
  churn_part.selection = churn;
  ObservedPart kept_part;
  kept_part.is_join = false;
  kept_part.selection = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{3}));
  double p_churn =
      engine_->learner().survival().SurvivalProbability(churn_part);
  double p_kept =
      engine_->learner().survival().SurvivalProbability(kept_part);
  EXPECT_LT(p_churn, 0.3);
  EXPECT_GT(p_kept, 0.6);
}

TEST_F(EngineScenarioTest, StatsAccountingConsistent) {
  // Over a varied session, every issued manipulation ends in exactly
  // one terminal state.
  Rng rng(12);
  double t = 0;
  for (int i = 0; i < 40; i++) {
    SelectionPred sel =
        Sel(rng.NextBool(0.5) ? "r" : "s",
            rng.NextBool(0.5) ? "r_a" : "s_c", CompareOp::kLt,
            Value(rng.NextInt(1, 80)));
    if (sel.table == "r") sel.column = "r_a";
    if (sel.table == "s") sel.column = "s_c";
    ASSERT_TRUE(engine_->OnUserEvent(SelAdd(sel), t).ok());
    if (rng.NextBool(0.3)) {
      ASSERT_TRUE(engine_->OnUserEvent(SelDel(sel), t + 0.5).ok());
    }
    t += rng.NextDouble(0.5, 15);
    Advance(t);
    if (rng.NextBool(0.6)) {
      ASSERT_TRUE(engine_->OnGo(t).ok());
      t += 2;
      Advance(t);
      ASSERT_TRUE(engine_->OnQueryResult(t).ok());
    }
  }
  ASSERT_TRUE(engine_->OnGo(t).ok());
  const EngineStats& st = engine_->stats();
  EXPECT_EQ(st.manipulations_issued,
            st.manipulations_completed + st.cancelled_at_go +
                st.cancelled_by_edit + st.abandoned_at_completion);
  // Cleanup restores the catalog.
  size_t base_tables = 2;
  ASSERT_TRUE(engine_->Shutdown().ok());
  EXPECT_EQ(db_->catalog().TableNames().size(), base_tables);
}

}  // namespace
}  // namespace sqp
