// Parallel-vs-sequential differential: the morsel-parallel engine
// (DESIGN.md §15) must be observationally identical to the sequential
// engine at every exec_threads setting — same rows in the same order,
// identical CostMeter charges, byte-identical EXPLAIN ANALYZE actuals,
// and the same failure point under deterministic fault schedules. Only
// wall-clock may differ.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics_registry.h"
#include "common/metrics_timeline.h"
#include "common/rng.h"
#include "db/database.h"
#include "harness/replayer.h"
#include "test_util.h"
#include "trace/trace.h"

namespace sqp {
namespace {

using testutil::Sel;

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

/// Everything observable about one query run on a fresh database.
struct RunOutcome {
  StatusCode code = StatusCode::kOk;
  std::string status_message;
  std::vector<Tuple> rows;
  uint64_t row_count = 0;
  double seconds = 0;
  uint64_t tuples = 0;
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;
  std::string profile_text;  // EXPLAIN ANALYZE rendering (when asked)
};

/// Build the canonical two-table database at `exec_threads` and run
/// `graph` once from a cold cache, capturing rows + meter deltas.
RunOutcome RunAtThreads(size_t exec_threads, const QueryGraph& graph,
                        size_t rows_r, size_t rows_s, uint64_t seed,
                        size_t pool_pages, bool explain_analyze = false) {
  std::unique_ptr<Database> db(testutil::MakeTwoTableDb(
      rows_r, rows_s, seed, pool_pages, exec_threads));
  EXPECT_TRUE(db->ColdStart().ok());
  const CostMeter& meter = db->meter();
  uint64_t r0 = meter.blocks_read();
  uint64_t w0 = meter.blocks_written();
  uint64_t t0 = meter.tuples_processed();

  ExecuteOptions options;
  options.keep_rows = true;
  options.explain_analyze = explain_analyze;
  auto result = db->Execute(graph, options);

  RunOutcome out;
  out.code = result.status().code();
  out.status_message = result.status().ToString();
  out.blocks_read = meter.blocks_read() - r0;
  out.blocks_written = meter.blocks_written() - w0;
  out.tuples = meter.tuples_processed() - t0;
  if (result.ok()) {
    out.rows = std::move(result->rows);
    out.row_count = result->row_count;
    out.seconds = result->seconds;
    if (result->profile != nullptr) {
      out.profile_text = result->profile->FormatText();
    }
  }
  return out;
}

void ExpectIdentical(const RunOutcome& base, const RunOutcome& other,
                     size_t threads) {
  SCOPED_TRACE("exec_threads " + std::to_string(threads));
  ASSERT_EQ(base.code, other.code)
      << "seq: " << base.status_message << " par: " << other.status_message;
  ASSERT_EQ(base.rows.size(), other.rows.size());
  for (size_t i = 0; i < base.rows.size(); i++) {
    ASSERT_EQ(base.rows[i], other.rows[i]) << "row " << i;
  }
  EXPECT_EQ(base.row_count, other.row_count);
  EXPECT_EQ(base.seconds, other.seconds) << "simulated time diverged";
  EXPECT_EQ(base.tuples, other.tuples) << "CPU charge diverged";
  EXPECT_EQ(base.blocks_read, other.blocks_read) << "read charge diverged";
  EXPECT_EQ(base.blocks_written, other.blocks_written)
      << "write charge diverged";
  EXPECT_EQ(base.profile_text, other.profile_text)
      << "EXPLAIN ANALYZE diverged";
}

/// Randomized scans/joins: rows and every CostMeter total must match
/// the sequential engine at 2, 4, and 8 threads.
TEST(ExecParallelDifferentialTest, RandomizedScansAndJoins) {
  Rng rng(0x5eed5eed);
  for (int round = 0; round < 6; round++) {
    SCOPED_TRACE("round " + std::to_string(round));
    size_t rows_r = 200 + static_cast<size_t>(rng.NextRange(2000));
    size_t rows_s = 200 + static_cast<size_t>(rng.NextRange(4000));
    uint64_t seed = static_cast<uint64_t>(round) + 31;

    QueryGraph graph;
    graph.AddRelation("r");
    if (rng.NextDouble(0, 1) < 0.8) {
      CompareOp op =
          rng.NextDouble(0, 1) < 0.5 ? CompareOp::kLt : CompareOp::kGe;
      graph.AddSelection(Sel("r", "r_a", op, Value(rng.NextInt(0, 99))));
    }
    if (rng.NextDouble(0, 1) < 0.5) {
      // Range pair: exercises the fused BETWEEN term on worker morsels.
      graph.AddSelection(
          Sel("r", "r_a", CompareOp::kGt, Value(rng.NextInt(0, 40))));
      graph.AddSelection(
          Sel("r", "r_a", CompareOp::kLt, Value(rng.NextInt(50, 99))));
    }
    if (rng.NextDouble(0, 1) < 0.7) {
      graph.AddJoin(testutil::RsJoin());
      if (rng.NextDouble(0, 1) < 0.5) {
        graph.AddSelection(
            Sel("s", "s_c", CompareOp::kLt, Value(rng.NextInt(1, 49))));
      }
    }

    RunOutcome base = RunAtThreads(1, graph, rows_r, rows_s, seed, 256);
    for (size_t threads : kThreadCounts) {
      if (threads == 1) continue;
      ExpectIdentical(
          base, RunAtThreads(threads, graph, rows_r, rows_s, seed, 256),
          threads);
    }
  }
}

/// EXPLAIN ANALYZE actuals (per-operator rows, batches, pages, charges)
/// render byte-identically at every thread count.
TEST(ExecParallelDifferentialTest, ExplainAnalyzeByteIdentical) {
  QueryGraph graph;
  graph.AddJoin(testutil::RsJoin());
  graph.AddSelection(
      Sel("r", "r_a", CompareOp::kGe, Value(static_cast<int64_t>(10))));
  graph.AddSelection(
      Sel("s", "s_c", CompareOp::kLt, Value(static_cast<int64_t>(40))));

  RunOutcome base =
      RunAtThreads(1, graph, 1500, 4500, 17, 256, /*explain_analyze=*/true);
  ASSERT_FALSE(base.profile_text.empty());
  for (size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    ExpectIdentical(base,
                    RunAtThreads(threads, graph, 1500, 4500, 17, 256,
                                 /*explain_analyze=*/true),
                    threads);
  }
}

/// Edge shapes: empty table, single row, and a predicate nothing
/// survives — the parallel window must handle empty/short morsel runs.
TEST(ExecParallelDifferentialTest, EdgeShapes) {
  struct Shape {
    const char* name;
    size_t rows_r;
    size_t rows_s;
    bool join;
    bool filter_all;
  };
  const Shape shapes[] = {
      {"empty", 0, 0, false, false},
      {"single", 1, 1, true, false},
      {"all_filtered", 1500, 100, false, true},
  };
  for (const Shape& shape : shapes) {
    SCOPED_TRACE(shape.name);
    QueryGraph graph;
    graph.AddRelation("r");
    if (shape.join) graph.AddJoin(testutil::RsJoin());
    if (shape.filter_all) {
      graph.AddSelection(
          Sel("r", "r_a", CompareOp::kLt, Value(static_cast<int64_t>(-1))));
    }
    RunOutcome base =
        RunAtThreads(1, graph, shape.rows_r, shape.rows_s, 23, 256);
    for (size_t threads : kThreadCounts) {
      if (threads == 1) continue;
      ExpectIdentical(
          base,
          RunAtThreads(threads, graph, shape.rows_r, shape.rows_s, 23, 256),
          threads);
    }
  }
}

/// Under a deterministic fault schedule every thread count must fail at
/// the same point with the same status and the same charges: workers
/// never fetch pages, so the disk.read schedule advances exactly as in
/// the sequential engine. Seeded from SQP_CHAOS_SEED like the sweeps.
TEST(ExecParallelDifferentialTest, FaultScheduleBitIdentical) {
  uint64_t base_seed = 1;
  if (const char* env = std::getenv("SQP_CHAOS_SEED")) {
    base_seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  QueryGraph graph;
  graph.AddJoin(testutil::RsJoin());
  graph.AddSelection(
      Sel("r", "r_a", CompareOp::kGe, Value(static_cast<int64_t>(10))));

  Rng rng(base_seed);
  for (int round = 0; round < 4; round++) {
    SCOPED_TRACE("fault round " + std::to_string(round));
    uint64_t nth = 5 + rng.NextRange(120);

    // Small pool: the scan cannot cache the tables, so "disk.read"
    // fires on real fetches in every run.
    FaultInjector::Global().Reset();
    FaultInjector::Global().Arm("disk.read", FaultSpec::EveryNth(nth));
    RunOutcome base = RunAtThreads(1, graph, 3000, 6000, 5, 32);

    for (size_t threads : kThreadCounts) {
      if (threads == 1) continue;
      FaultInjector::Global().Reset();
      FaultInjector::Global().Arm("disk.read", FaultSpec::EveryNth(nth));
      ExpectIdentical(base, RunAtThreads(threads, graph, 3000, 6000, 5, 32),
                      threads);
    }
    FaultInjector::Global().Reset();
  }
}

/// Speculative materialization (background-priority morsels) produces
/// the same table row count and the same simulated cost at every
/// thread count.
TEST(ExecParallelDifferentialTest, MaterializationIdentical) {
  QueryGraph def;
  def.AddRelation("r");
  def.AddSelection(
      Sel("r", "r_a", CompareOp::kLt, Value(static_cast<int64_t>(60))));

  uint64_t base_rows = 0;
  double base_seconds = -1;
  for (size_t threads : kThreadCounts) {
    SCOPED_TRACE("exec_threads " + std::to_string(threads));
    std::unique_ptr<Database> db(
        testutil::MakeTwoTableDb(2500, 100, 13, 256, threads));
    ASSERT_TRUE(db->ColdStart().ok());
    auto result = db->Materialize(def, "mv_par", /*register_view=*/false);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (threads == 1) {
      base_rows = result->row_count;
      base_seconds = result->seconds;
      EXPECT_GT(base_rows, 0u);
    } else {
      EXPECT_EQ(result->row_count, base_rows);
      EXPECT_EQ(result->seconds, base_seconds) << "materialize cost diverged";
    }
  }
}

/// The timeline-series dump (DESIGN.md §16) is part of the parallel
/// determinism contract: a speculative replay of the same trace at
/// exec_threads 1/2/4/8 yields a byte-identical dump. The sampler ticks
/// on the simulated clock (never wall time) and the deterministic
/// filter excludes the `scheduler.*` / `*.parallel.*` families, so
/// every remaining series is a pure function of the replay seed.
TEST(ExecParallelDifferentialTest, TimelineSeriesByteIdentical) {
  Trace trace;
  trace.user_id = 3;
  auto event = [&](double t, TraceEventType type) {
    TraceEvent e;
    e.timestamp = t;
    e.type = type;
    return e;
  };
  TraceEvent sel = event(1, TraceEventType::kAddSelection);
  sel.selection = Sel("r", "r_a", CompareOp::kLt, Value(int64_t{20}));
  TraceEvent join = event(2, TraceEventType::kAddJoin);
  join.join = testutil::RsJoin();
  TraceEvent sel2 = event(40, TraceEventType::kAddSelection);
  sel2.selection = Sel("s", "s_c", CompareOp::kLt, Value(int64_t{10}));
  trace.events = {sel, join, event(31, TraceEventType::kGo), sel2,
                  event(70, TraceEventType::kGo)};

  auto replay_csv = [&](size_t threads, std::string* csv) {
    // Cumulative values must start from the same baseline each run;
    // registrations survive the reset, so series sets align too (the
    // warm-up run below registers the lazy families).
    MetricsRegistry::Global().ResetAll();
    std::unique_ptr<Database> db(
        testutil::MakeTwoTableDb(1200, 3600, 11, 128, threads));
    MetricsTimeline timeline;
    ReplayOptions options;
    options.speculation = true;
    options.timeline = &timeline;
    auto result = TraceReplayer(db.get(), options).Replay(trace);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(timeline.tick_count(), 10u);
    *csv = timeline.FormatCsv();
  };

  std::string warmup;
  replay_csv(1, &warmup);  // registers lazy families (learner, q-error)
  std::string base;
  replay_csv(1, &base);
  ASSERT_FALSE(base.empty());
  EXPECT_NE(base.find("bufferpool.hits"), std::string::npos);
  EXPECT_NE(base.find("attr.query.blocks"), std::string::npos);
  for (size_t threads : kThreadCounts) {
    if (threads == 1) continue;
    SCOPED_TRACE("exec_threads " + std::to_string(threads));
    std::string csv;
    replay_csv(threads, &csv);
    EXPECT_EQ(csv, base) << "timeline series diverged from sequential";
  }
}

/// The scheduler and morsel counters register and advance when a worker
/// pool exists; morsel counts are deterministic (foreground-dispatched),
/// so two identical runs bump them identically.
TEST(ExecParallelMetricsTest, CountersAdvance) {
  QueryGraph graph;
  graph.AddJoin(testutil::RsJoin());

  auto before = MetricsRegistry::Global().Snapshot();
  std::unique_ptr<Database> db(
      testutil::MakeTwoTableDb(2100, 4200, 7, 256, /*exec_threads=*/4));
  ExecuteOptions options;
  auto result = db->Execute(graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto after = MetricsRegistry::Global().Snapshot();

  EXPECT_EQ(after.gauges.at("scheduler.workers"), 3.0);
  EXPECT_GT(after.counter("exec.parallel.morsels"),
            before.counter("exec.parallel.morsels"));
  // Fallbacks only happen on peek failures; none under healthy storage.
  EXPECT_EQ(after.counter("exec.parallel.fallbacks"),
            before.counter("exec.parallel.fallbacks"));
}

}  // namespace
}  // namespace sqp
